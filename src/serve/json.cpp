#include "serve/json.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace msc::serve::json {

namespace {

// Nesting cap: a hostile "[[[[[..." line must produce a ParseError, not a
// stack overflow.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parseDocument() {
    skipWs();
    Value v = parseValue(0);
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("JSON parse error at byte " + std::to_string(pos_) +
                     ": " + what);
  }

  bool atEnd() const noexcept { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char next() {
    if (atEnd()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skipWs() noexcept {
    while (!atEnd() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                        peek() == '\r')) {
      ++pos_;
    }
  }

  void expect(char c) {
    if (atEnd() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parseValue(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    if (atEnd()) fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parseObject(depth);
      case '[':
        return parseArray(depth);
      case '"':
        return Value(parseString());
      case 't':
        if (consumeLiteral("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consumeLiteral("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consumeLiteral("null")) return Value(nullptr);
        fail("invalid literal");
      default:
        return parseNumber();
    }
  }

  Value parseObject(int depth) {
    expect('{');
    Object obj;
    skipWs();
    if (!atEnd() && peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skipWs();
      if (atEnd() || peek() != '"') fail("expected object key string");
      std::string key = parseString();
      skipWs();
      expect(':');
      skipWs();
      obj[std::move(key)] = parseValue(depth + 1);
      skipWs();
      if (atEnd()) fail("unterminated object");
      const char c = next();
      if (c == '}') return Value(std::move(obj));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parseArray(int depth) {
    expect('[');
    Array arr;
    skipWs();
    if (!atEnd() && peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      skipWs();
      arr.push_back(parseValue(depth + 1));
      skipWs();
      if (atEnd()) fail("unterminated array");
      const char c = next();
      if (c == ']') return Value(std::move(arr));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (atEnd()) fail("unterminated string");
      char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      c = next();
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': appendCodepoint(out, parseEscapedCodepoint()); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  unsigned parseHex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return v;
  }

  /// \uXXXX already consumed up to 'u'; handles surrogate pairs.
  unsigned parseEscapedCodepoint() {
    unsigned cp = parseHex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (!consumeLiteral("\\u")) fail("unpaired UTF-16 surrogate");
      const unsigned lo = parseHex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired UTF-16 surrogate");
    }
    return cp;
  }

  static void appendCodepoint(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Value parseNumber() {
    const std::size_t start = pos_;
    if (!atEnd() && peek() == '-') ++pos_;
    if (atEnd() || peek() < '0' || peek() > '9') fail("invalid number");
    while (!atEnd() && peek() >= '0' && peek() <= '9') ++pos_;
    if (!atEnd() && peek() == '.') {
      ++pos_;
      if (atEnd() || peek() < '0' || peek() > '9') fail("invalid number");
      while (!atEnd() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!atEnd() && (peek() == '+' || peek() == '-')) ++pos_;
      if (atEnd() || peek() < '0' || peek() > '9') fail("invalid number");
      while (!atEnd() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    return Value(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dumpString(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x", c);
          out += buf.data();
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
}

void dumpNumber(double v, std::string& out) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // Integral doubles in the exactly-representable range render as integers
  // so ids and counters round-trip without a spurious ".0".
  constexpr double kMaxExact = 9007199254740992.0;  // 2^53
  if (v == std::floor(v) && std::fabs(v) <= kMaxExact) {
    std::array<char, 32> buf{};
    std::snprintf(buf.data(), buf.size(), "%.0f", v);
    out += buf.data();
    return;
  }
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%.17g", v);
  out += buf.data();
}

}  // namespace

bool Value::asBool() const {
  if (const auto* b = std::get_if<bool>(&v_)) return *b;
  throw std::runtime_error("JSON value is not a boolean");
}

double Value::asNumber() const {
  if (const auto* d = std::get_if<double>(&v_)) return *d;
  throw std::runtime_error("JSON value is not a number");
}

const std::string& Value::asString() const {
  if (const auto* s = std::get_if<std::string>(&v_)) return *s;
  throw std::runtime_error("JSON value is not a string");
}

const Array& Value::asArray() const {
  if (const auto* a = std::get_if<Array>(&v_)) return *a;
  throw std::runtime_error("JSON value is not an array");
}

const Object& Value::asObject() const {
  if (const auto* o = std::get_if<Object>(&v_)) return *o;
  throw std::runtime_error("JSON value is not an object");
}

Object& Value::asObject() {
  if (auto* o = std::get_if<Object>(&v_)) return *o;
  throw std::runtime_error("JSON value is not an object");
}

const Value* Value::find(std::string_view key) const noexcept {
  const auto* obj = std::get_if<Object>(&v_);
  if (!obj) return nullptr;
  const auto it = obj->find(std::string(key));
  return it == obj->end() ? nullptr : &it->second;
}

Value parse(std::string_view text) { return Parser(text).parseDocument(); }

void dump(const Value& v, std::string& out) {
  if (v.isNull()) {
    out += "null";
  } else if (v.isBool()) {
    out += v.asBool() ? "true" : "false";
  } else if (v.isNumber()) {
    dumpNumber(v.asNumber(), out);
  } else if (v.isString()) {
    dumpString(v.asString(), out);
  } else if (v.isArray()) {
    out.push_back('[');
    bool first = true;
    for (const Value& e : v.asArray()) {
      if (!first) out.push_back(',');
      first = false;
      dump(e, out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [key, val] : v.asObject()) {
      if (!first) out.push_back(',');
      first = false;
      dumpString(key, out);
      out.push_back(':');
      dump(val, out);
    }
    out.push_back('}');
  }
}

std::string dump(const Value& v) {
  std::string out;
  dump(v, out);
  return out;
}

}  // namespace msc::serve::json
