#include "serve/instance_cache.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string_view>

#include "obs/context.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace msc::serve {

namespace {

// Estimated resident bytes of each cacheable object. These are charges
// against the budget, not exact allocator numbers: adjacency vectors and
// map nodes carry allocator overhead the estimate ignores, so the real
// footprint is a small constant factor above — the budget still bounds it.
std::size_t graphBytes(const msc::graph::Graph& g) {
  const auto n = static_cast<std::size_t>(g.nodeCount());
  const std::size_t e = g.edgeCount();
  return e * sizeof(msc::graph::Edge) + 2 * e * sizeof(msc::graph::Arc) +
         n * sizeof(std::vector<msc::graph::Arc>) + 64;
}

std::size_t candidatesBytes(const core::CandidateSet& c) {
  return c.size() * sizeof(core::Shortcut) + 64;
}

std::size_t pairsBytes(const std::vector<core::SocialPair>& p) {
  return p.size() * sizeof(core::SocialPair) + 64;
}

class Fnv1a {
 public:
  void feed(const void* bytes, std::size_t size) noexcept {
    const auto* p = static_cast<const unsigned char*>(bytes);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  template <typename T>
  void feedValue(const T& v) noexcept {
    static_assert(std::is_trivially_copyable_v<T>);
    feed(&v, sizeof(v));
  }
  std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

std::string hexKey(char prefix, std::uint64_t hash) {
  std::array<char, 20> buf{};
  std::snprintf(buf.data(), buf.size(), "%c%016llx", prefix,
                static_cast<unsigned long long>(hash));
  return std::string(buf.data());
}

}  // namespace

std::string contentHashHex(const void* bytes, std::size_t size) {
  Fnv1a h;
  h.feed(bytes, size);
  std::array<char, 20> buf{};
  std::snprintf(buf.data(), buf.size(), "%016llx",
                static_cast<unsigned long long>(h.value()));
  return std::string(buf.data());
}

InstanceCache::InstanceCache(std::size_t byteBudget,
                             std::size_t oracleRowBudgetBytes)
    : byteBudget_(byteBudget), oracleRowBudgetBytes_(oracleRowBudgetBytes) {}

void InstanceCache::touch(std::list<std::string>::iterator pos) {
  lru_.splice(lru_.begin(), lru_, pos);
}

InstanceCache::GraphEntry* InstanceCache::findGraphEntry(
    const std::string& key, bool countStats) {
  const auto it = graphs_.find(key);
  if (it == graphs_.end()) {
    if (countStats) ++counters_.graphMisses;
    return nullptr;
  }
  if (countStats) ++counters_.graphHits;
  touch(it->second.lruPos);
  return &it->second;
}

InstanceCache::PairsEntry* InstanceCache::findPairsEntry(
    const std::string& key, bool countStats) {
  const auto it = pairsSets_.find(key);
  if (it == pairsSets_.end()) {
    if (countStats) ++counters_.pairsMisses;
    return nullptr;
  }
  if (countStats) ++counters_.pairsHits;
  touch(it->second.lruPos);
  return &it->second;
}

std::string InstanceCache::putGraph(msc::graph::Graph g,
                                    msc::graph::DistanceMode mode) {
  // Canonical bytes: node count then every edge (endpoints + length bits)
  // in insertion order — exactly what writeEdgeList round-trips.
  Fnv1a h;
  h.feedValue(g.nodeCount());
  for (const auto& e : g.edges()) {
    h.feedValue(e.u);
    h.feedValue(e.v);
    h.feedValue(e.length);
  }
  const std::string key = hexKey('g', h.value());

  const std::lock_guard<std::mutex> lock(mu_);
  if (GraphEntry* existing = findGraphEntry(key, /*countStats=*/false)) {
    // Re-touch. A different requested backend drops the memoized oracle so
    // the next solve rebuilds under the new mode.
    if (existing->mode != mode) {
      existing->mode = mode;
      dropOracle(*existing);
    }
    return key;
  }
  GraphEntry entry;
  entry.graph = std::make_shared<const msc::graph::Graph>(std::move(g));
  entry.mode = mode;
  entry.bytes = graphBytes(*entry.graph);
  lru_.push_front(key);
  entry.lruPos = lru_.begin();
  bytesUsed_ += entry.bytes;
  graphs_.emplace(key, std::move(entry));
  evictOverBudget(key);
  return key;
}

std::string InstanceCache::putPairs(std::vector<core::SocialPair> pairs) {
  Fnv1a h;
  for (const auto& p : pairs) {
    h.feedValue(p.u);
    h.feedValue(p.w);
  }
  const std::string key = hexKey('p', h.value());

  const std::lock_guard<std::mutex> lock(mu_);
  if (findPairsEntry(key, /*countStats=*/false)) return key;  // re-touch
  PairsEntry entry;
  entry.pairs = std::make_shared<const std::vector<core::SocialPair>>(
      std::move(pairs));
  entry.bytes = pairsBytes(*entry.pairs);
  lru_.push_front(key);
  entry.lruPos = lru_.begin();
  bytesUsed_ += entry.bytes;
  pairsSets_.emplace(key, std::move(entry));
  evictOverBudget(key);
  return key;
}

std::shared_ptr<const msc::graph::Graph> InstanceCache::findGraph(
    const std::string& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  GraphEntry* entry = findGraphEntry(key, /*countStats=*/true);
  return entry ? entry->graph : nullptr;
}

std::shared_ptr<const std::vector<core::SocialPair>> InstanceCache::findPairs(
    const std::string& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  PairsEntry* entry = findPairsEntry(key, /*countStats=*/true);
  return entry ? entry->pairs : nullptr;
}

void InstanceCache::refreshOracleBytes(GraphEntry& entry) {
  const std::size_t now = entry.oracle ? entry.oracle->residentBytes() : 0;
  bytesUsed_ += now;
  bytesUsed_ -= entry.oracleBytes;
  entry.bytes += now;
  entry.bytes -= entry.oracleBytes;
  entry.oracleBytes = now;
}

void InstanceCache::dropOracle(GraphEntry& entry) {
  if (!entry.oracle) return;
  entry.oracle.reset();
  bytesUsed_ -= entry.oracleBytes;
  entry.bytes -= entry.oracleBytes;
  entry.oracleBytes = 0;
}

namespace {

void logModeDecision(const std::string& key, const char* decision,
                     const char* from, const char* to, int nodes,
                     const std::string& reason) {
  if (!obs::log::enabled(obs::log::Level::Info)) return;
  std::vector<obs::log::Field> fields{
      {"graph", key},
      {"decision", decision},
      {"to", to},
      {"nodes", static_cast<std::int64_t>(nodes)},
      {"reason", reason},
  };
  if (from != nullptr) fields.emplace_back("from", from);
  obs::log::write(obs::log::Level::Info, "serve.oracle_mode_decision",
                  fields);
}

}  // namespace

bool InstanceCache::ensureOracle(const std::string& key, GraphEntry& entry,
                                 int threads) {
  const int n = entry.graph->nodeCount();
  if (entry.oracle) {
    if (entry.mode == msc::graph::DistanceMode::Auto) {
      // Measured auto policy (docs/ALGORITHMS.md §16): the initial pick is
      // a guess from n alone; every reuse re-checks it against the query
      // mix the oracle actually observed and rebuilds when the evidence
      // says the other backend is cheaper.
      const msc::graph::AutoPolicyDecision d =
          msc::graph::autoRevalidateBackend(n, entry.oracle->mode(),
                                            entry.oracle->stats());
      if (d.switchBackend) {
        ++counters_.oracleModeSwitches;
        if (obs::enabled()) {
          obs::counter("serve.oracle_mode_switches").add(1);
        }
        logModeDecision(key, "switch", entry.oracle->mode(),
                        msc::graph::distanceModeName(d.backend), n, d.reason);
        dropOracle(entry);
        ++counters_.apspComputes;
        const obs::ScopedPhaseTimer phase(obs::Phase::Apsp);
        entry.oracle = msc::graph::makeDistanceOracle(
            entry.graph, d.backend, /*landmarks=*/8, threads,
            oracleRowBudgetBytes_);
        refreshOracleBytes(entry);
        return false;
      }
    }
    ++counters_.apspHits;
    // Lazy backends grew since the last touch (rows cached by solves);
    // pick the delta up so the budget still bounds them.
    refreshOracleBytes(entry);
    return true;
  }
  ++counters_.apspComputes;
  msc::graph::DistanceMode buildMode = entry.mode;
  if (entry.mode == msc::graph::DistanceMode::Auto) {
    const msc::graph::AutoPolicyDecision d = msc::graph::autoInitialBackend(n);
    buildMode = d.backend;
    logModeDecision(key, "initial", /*from=*/nullptr,
                    msc::graph::distanceModeName(d.backend), n, d.reason);
  }
  // Request-phase attribution: the distance build is the dominant
  // cold-cache cost, so it gets its own phase in the serve usage block
  // (§14). Covers both the dense APSP and the pair-centric landmark runs.
  const obs::ScopedPhaseTimer phase(obs::Phase::Apsp);
  entry.oracle = msc::graph::makeDistanceOracle(
      entry.graph, buildMode, /*landmarks=*/8, threads, oracleRowBudgetBytes_);
  refreshOracleBytes(entry);
  return false;
}

void InstanceCache::ensureCandidates(GraphEntry& entry) {
  if (entry.candidates) return;
  entry.candidates = std::make_shared<const core::CandidateSet>(
      core::CandidateSet::allPairs(entry.graph->nodeCount()));
  bytesUsed_ += candidatesBytes(*entry.candidates);
  entry.bytes += candidatesBytes(*entry.candidates);
}

core::Instance InstanceCache::instance(const std::string& graphKey,
                                       const std::string& pairsKey,
                                       double distanceThreshold, int threads,
                                       bool* apspWasCached) {
  std::shared_ptr<const msc::graph::Graph> graph;
  std::shared_ptr<const msc::graph::DistanceOracle> oracle;
  std::shared_ptr<const std::vector<core::SocialPair>> pairs;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    GraphEntry* gEntry = findGraphEntry(graphKey, /*countStats=*/true);
    if (!gEntry) {
      throw std::runtime_error("unknown graph key \"" + graphKey +
                               "\" (never loaded, or evicted — re-send "
                               "load_graph)");
    }
    PairsEntry* pEntry = findPairsEntry(pairsKey, /*countStats=*/true);
    if (!pEntry) {
      throw std::runtime_error("unknown pairs key \"" + pairsKey +
                               "\" (never loaded, or evicted — re-send "
                               "load_pairs)");
    }
    const bool hit = ensureOracle(graphKey, *gEntry, threads);
    if (apspWasCached) *apspWasCached = hit;
    graph = gEntry->graph;
    oracle = gEntry->oracle;
    pairs = pEntry->pairs;
    evictOverBudget(graphKey);
  }
  // The pair-node row prefetch (lazy backends) runs outside the cache
  // lock; its byte growth is picked up on the entry's next touch.
  return core::Instance(std::move(graph), std::move(oracle), *pairs,
                        distanceThreshold, threads);
}

std::shared_ptr<const core::CandidateSet> InstanceCache::candidates(
    const std::string& graphKey) {
  const std::lock_guard<std::mutex> lock(mu_);
  GraphEntry* entry = findGraphEntry(graphKey, /*countStats=*/false);
  if (!entry) {
    throw std::runtime_error("unknown graph key \"" + graphKey +
                             "\" (never loaded, or evicted — re-send "
                             "load_graph)");
  }
  ensureCandidates(*entry);
  auto result = entry->candidates;
  evictOverBudget(graphKey);
  return result;
}

InstanceCache::Stats InstanceCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Stats s = counters_;
  s.bytesUsed = bytesUsed_;
  s.byteBudget = byteBudget_;
  s.entries = graphs_.size() + pairsSets_.size();
  for (const auto& [key, entry] : graphs_) {
    if (!entry.oracle) continue;
    // Live residentBytes(), not the charged estimate: a scrape between
    // touches still sees rows cached since.
    const std::size_t bytes = entry.oracle->residentBytes();
    const bool pairCentric =
        std::string_view(entry.oracle->mode()) == "pair_centric";
    if (pairCentric) {
      ++s.oraclesPairCentric;
      s.oracleBytesPairCentric += bytes;
    } else {
      ++s.oraclesDense;
      s.oracleBytesDense += bytes;
    }
    // Query-mix telemetry summed per backend (docs/ALGORITHMS.md §16).
    const msc::graph::OracleStats os = entry.oracle->stats();
    OracleAgg& agg = pairCentric ? s.oraclePairCentric : s.oracleDense;
    agg.pointQueries += os.pointQueries;
    agg.rowQueries += os.rowQueries;
    agg.terminalBatches += os.terminalBatches;
    agg.rowBuilds += os.rowBuilds;
    agg.rowHits += os.rowHits;
    agg.altQueries += os.altQueries;
    agg.rowsEvicted += os.rowsEvicted;
    agg.rowsResident += os.rowsResident;
  }
  return s;
}

void InstanceCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  graphs_.clear();
  pairsSets_.clear();
  lru_.clear();
  bytesUsed_ = 0;
}

void InstanceCache::evictOverBudget(const std::string& keep) {
  if (byteBudget_ == 0) return;
  while (bytesUsed_ > byteBudget_ && !lru_.empty()) {
    // Walk from the cold end, skipping the entry the caller just touched
    // (even a single over-budget entry must stay usable for its request).
    auto victim = std::prev(lru_.end());
    while (*victim == keep && victim != lru_.begin()) --victim;
    if (*victim == keep) return;  // nothing evictable left
    const std::string key = *victim;
    eraseKey(key);
    ++counters_.evictions;
  }
}

void InstanceCache::eraseKey(const std::string& key) {
  if (const auto it = graphs_.find(key); it != graphs_.end()) {
    bytesUsed_ -= it->second.bytes;
    lru_.erase(it->second.lruPos);
    graphs_.erase(it);
    return;
  }
  if (const auto it = pairsSets_.find(key); it != pairsSets_.end()) {
    bytesUsed_ -= it->second.bytes;
    lru_.erase(it->second.lruPos);
    pairsSets_.erase(it);
  }
}

}  // namespace msc::serve
