#include "serve/protocol.h"

#include <cmath>
#include <utility>

namespace msc::serve {

namespace {

struct CommandEntry {
  const char* name;
  Command cmd;
};

constexpr CommandEntry kCommands[] = {
    {"load_graph", Command::LoadGraph}, {"load_pairs", Command::LoadPairs},
    {"solve", Command::Solve},          {"eval", Command::Eval},
    {"stats", Command::Stats},          {"metrics", Command::Metrics},
    {"health", Command::Health},        {"sleep", Command::Sleep},
    {"cancel", Command::Cancel},        {"shutdown", Command::Shutdown},
};

std::string renderResponse(const json::Value& id, const char* status,
                           json::Object fields, double wallSeconds,
                           std::uint64_t gainEvals) {
  fields["schema"] = kSchemaVersion;
  fields["id"] = id;
  fields["status"] = status;
  fields["wall_seconds"] = wallSeconds;
  fields["gain_evals"] = gainEvals;
  return json::dump(json::Value(std::move(fields)));
}

}  // namespace

const char* commandName(Command cmd) {
  for (const auto& entry : kCommands) {
    if (entry.cmd == cmd) return entry.name;
  }
  return "?";
}

Request parseRequest(const std::string& line) {
  json::Value doc;
  try {
    doc = json::parse(line);
  } catch (const json::ParseError& e) {
    throw ProtocolError(e.what());
  }
  if (!doc.isObject()) {
    throw ProtocolError("request must be a JSON object");
  }
  Request req;
  req.params = doc.asObject();

  if (const auto it = req.params.find("id"); it != req.params.end()) {
    const json::Value& id = it->second;
    if (!id.isNull() && !id.isString() && !id.isNumber()) {
      throw ProtocolError("\"id\" must be a string, number or null");
    }
    req.id = id;
  }

  const auto cmdIt = req.params.find("cmd");
  if (cmdIt == req.params.end()) {
    throw ProtocolError("missing \"cmd\" field", req.id);
  }
  if (!cmdIt->second.isString()) {
    throw ProtocolError("\"cmd\" must be a string", req.id);
  }
  const std::string& name = cmdIt->second.asString();
  for (const auto& entry : kCommands) {
    if (name == entry.name) {
      req.cmd = entry.cmd;
      return req;
    }
  }
  throw ProtocolError("unknown cmd \"" + name + "\"", req.id);
}

std::string okResponse(const json::Value& id, Command cmd,
                       json::Object fields, double wallSeconds,
                       std::uint64_t gainEvals) {
  fields["cmd"] = commandName(cmd);
  return renderResponse(id, "ok", std::move(fields), wallSeconds, gainEvals);
}

std::string statusResponse(const json::Value& id, Command cmd,
                           json::Object fields, const char* status,
                           double wallSeconds, std::uint64_t gainEvals) {
  fields["cmd"] = commandName(cmd);
  return renderResponse(id, status, std::move(fields), wallSeconds, gainEvals);
}

std::string errorResponse(const json::Value& id, const std::string& message,
                          double wallSeconds) {
  json::Object fields;
  fields["error"] = message;
  return renderResponse(id, "error", std::move(fields), wallSeconds, 0);
}

std::string overloadedResponse(const json::Value& id, std::size_t queueDepth,
                               std::size_t queueLimit) {
  json::Object fields;
  fields["error"] = "admission queue full";
  fields["queue_depth"] = queueDepth;
  fields["queue_limit"] = queueLimit;
  return renderResponse(id, "overloaded", std::move(fields), 0.0, 0);
}

const json::Value* findParam(const Request& req, const char* key) {
  const auto it = req.params.find(key);
  return it == req.params.end() ? nullptr : &it->second;
}

std::string requireStringParam(const Request& req, const char* key) {
  const json::Value* v = findParam(req, key);
  if (!v) {
    throw ProtocolError(std::string("missing required field \"") + key + "\"");
  }
  if (!v->isString()) {
    throw ProtocolError(std::string("field \"") + key + "\" must be a string");
  }
  return v->asString();
}

std::string getStringParam(const Request& req, const char* key,
                           const std::string& fallback) {
  const json::Value* v = findParam(req, key);
  if (!v) return fallback;
  if (!v->isString()) {
    throw ProtocolError(std::string("field \"") + key + "\" must be a string");
  }
  return v->asString();
}

double getNumberParam(const Request& req, const char* key, double fallback) {
  const json::Value* v = findParam(req, key);
  if (!v) return fallback;
  if (!v->isNumber()) {
    throw ProtocolError(std::string("field \"") + key + "\" must be a number");
  }
  return v->asNumber();
}

long long getIntParam(const Request& req, const char* key, long long fallback,
                      long long min, long long max) {
  const json::Value* v = findParam(req, key);
  long long value = fallback;
  if (v) {
    if (!v->isNumber()) {
      throw ProtocolError(std::string("field \"") + key +
                          "\" must be a number");
    }
    const double d = v->asNumber();
    if (!std::isfinite(d) || d != std::floor(d)) {
      throw ProtocolError(std::string("field \"") + key +
                          "\" must be an integer");
    }
    value = static_cast<long long>(d);
  }
  if (value < min || value > max) {
    throw ProtocolError(std::string("field \"") + key + "\" out of range [" +
                        std::to_string(min) + ", " + std::to_string(max) +
                        "]");
  }
  return value;
}

bool getBoolParam(const Request& req, const char* key, bool fallback) {
  const json::Value* v = findParam(req, key);
  if (!v) return fallback;
  if (!v->isBool()) {
    throw ProtocolError(std::string("field \"") + key +
                        "\" must be a boolean");
  }
  return v->asBool();
}

core::ShortcutList parsePlacementSpec(const std::string& spec) {
  core::ShortcutList out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    const auto dash = token.find('-', 1);  // allow no leading '-' only
    if (dash == std::string::npos) {
      throw ProtocolError("malformed placement entry \"" + token + "\"");
    }
    try {
      std::size_t usedA = 0;
      std::size_t usedB = 0;
      const std::string aStr = token.substr(0, dash);
      const std::string bStr = token.substr(dash + 1);
      const int a = std::stoi(aStr, &usedA);
      const int b = std::stoi(bStr, &usedB);
      if (usedA != aStr.size() || usedB != bStr.size()) {
        throw ProtocolError("malformed placement entry \"" + token + "\"");
      }
      out.push_back(core::Shortcut::make(a, b));
    } catch (const ProtocolError&) {
      throw;
    } catch (const std::exception&) {
      throw ProtocolError("malformed placement entry \"" + token + "\"");
    }
  }
  return out;
}

std::string placementSpec(const core::ShortcutList& placement) {
  std::string out;
  for (std::size_t i = 0; i < placement.size(); ++i) {
    if (i) out.push_back(',');
    out += std::to_string(placement[i].a);
    out.push_back('-');
    out += std::to_string(placement[i].b);
  }
  return out;
}

}  // namespace msc::serve
