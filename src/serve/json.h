// Minimal JSON value model, parser and single-line writer for the serve
// protocol (serve/protocol.h).
//
// The serve front end speaks line-delimited JSON with untrusted clients, so
// the parser is written for robustness first: it throws json::ParseError
// with a byte-offset-annotated message on any malformed input (the protocol
// layer turns that into a structured error response), caps nesting depth so
// a hostile "[[[[..." line cannot overflow the stack, and accepts exactly
// standard JSON — no comments, trailing commas or NaN literals. Numbers are
// stored as double (integral values round-trip unchanged up to 2^53, which
// covers every id/count the protocol carries); object keys are kept in a
// sorted map so dump() output is deterministic.
#pragma once

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace msc::serve::json {

class Value;
using Array = std::vector<Value>;
/// Sorted keys: rendering is deterministic regardless of insertion order.
using Object = std::map<std::string, Value>;

struct ParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Value {
 public:
  Value() noexcept : v_(nullptr) {}
  Value(std::nullptr_t) noexcept : v_(nullptr) {}
  Value(bool b) noexcept : v_(b) {}
  Value(double d) noexcept : v_(d) {}
  Value(int i) noexcept : v_(static_cast<double>(i)) {}
  Value(long long i) noexcept : v_(static_cast<double>(i)) {}
  Value(unsigned long long i) noexcept : v_(static_cast<double>(i)) {}
  Value(std::size_t i) noexcept : v_(static_cast<double>(i)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) noexcept : v_(std::move(s)) {}
  Value(Array a) noexcept : v_(std::move(a)) {}
  Value(Object o) noexcept : v_(std::move(o)) {}

  bool isNull() const noexcept { return std::holds_alternative<std::nullptr_t>(v_); }
  bool isBool() const noexcept { return std::holds_alternative<bool>(v_); }
  bool isNumber() const noexcept { return std::holds_alternative<double>(v_); }
  bool isString() const noexcept { return std::holds_alternative<std::string>(v_); }
  bool isArray() const noexcept { return std::holds_alternative<Array>(v_); }
  bool isObject() const noexcept { return std::holds_alternative<Object>(v_); }

  /// Typed accessors; throw std::runtime_error naming the expected type.
  bool asBool() const;
  double asNumber() const;
  const std::string& asString() const;
  const Array& asArray() const;
  const Object& asObject() const;
  Object& asObject();

  /// Object member lookup; nullptr when not an object or key absent.
  const Value* find(std::string_view key) const noexcept;

  friend bool operator==(const Value&, const Value&) = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parses one complete JSON document (leading/trailing whitespace allowed;
/// trailing garbage is an error). Throws ParseError.
Value parse(std::string_view text);

/// Renders on a single line (no newlines, minimal spacing). Non-finite
/// numbers render as null so the output is always standard JSON; integral
/// doubles up to 2^53 render without a decimal point.
std::string dump(const Value& v);
void dump(const Value& v, std::string& out);

}  // namespace msc::serve::json
