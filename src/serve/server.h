// Long-running MSC solve service: request execution engine + front ends.
//
// Layering (docs/ALGORITHMS.md §12):
//
//   Engine  — executes one parsed msc.serve.v1 request against the shared
//             InstanceCache and the existing solver entry points. Thread-
//             safe and deterministic: a solve through the engine is
//             bit-identical to the direct CLI path at equal
//             {algo, k, threads, seed}, and to any serial replay of the
//             same request set (content-addressed cache keys make replies
//             independent of interleaving).
//   Server  — owns one Engine, a BOUNDED admission queue and one executor
//             thread. Front ends (stdin/stdout JSONL, arbitrary iostreams
//             for tests, or a Unix-domain socket accepting concurrent
//             connections) parse lines and admit them; when the queue is
//             full the request is answered `status:"overloaded"`
//             immediately instead of growing the queue — backpressure the
//             client can see. The executor drains FIFO, so responses to
//             admitted requests preserve admission order per connection.
//
// Shutdown: a `shutdown` request, EOF on the input, or
// Server::requestShutdown() (async-signal-safe; wire it to SIGINT/SIGTERM)
// all stop admission, drain every already-admitted request, then return.
// Requests that arrive after a shutdown request are answered with a
// structured "server is shutting down" error, never silently dropped.
//
// Observability: each request runs under an obs span (span.serve.request +
// a per-command span), bumps serve.* counters (requests, per-command
// counts, cache hits/misses, overload rejections) and emits a
// "serve.queue_depth" trace counter track, so a solve service under load
// can be profiled with the exact same MSC_METRICS / MSC_TRACE tooling as a
// one-shot CLI run. Service-grade telemetry on top of that
// (docs/ALGORITHMS.md §13):
//   - latency histograms (obs/histogram.h), always on: per-request wall
//     time ("serve.request_seconds") and admission-queue wait
//     ("serve.queue_wait_seconds"), alongside the library-level
//     "apsp.build_seconds" / "greedy.round_scan_seconds";
//   - Prometheus text exposition of the whole registry via the `metrics`
//     command or a plain-HTTP GET /metrics listener
//     (startMetricsHttp, `msc_cli serve --metrics-listen PORT`);
//   - one structured JSONL log line per request (obs/log.h, MSC_LOG=info)
//     with id, command, status, cache hit/miss, queue wait and wall time;
//   - a `health` readiness probe answered on the reader thread (never
//     queued behind solves) that reports ready:false while
//     draining/shutting down, mirrored as HTTP 200/503 on GET /healthz.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "serve/instance_cache.h"
#include "serve/protocol.h"
#include "util/cancel.h"

namespace msc::serve {

/// MSC_SERVE_CACHE_MB (default 256) in bytes.
std::size_t defaultCacheBytes();

struct EngineConfig {
  /// Instance-cache byte budget; 0 disables eviction.
  std::size_t cacheBytes = defaultCacheBytes();
  /// Worker threads for requests that omit "threads" (0 = all cores).
  int defaultThreads = 1;
  /// Row-cache byte budget per pair-centric oracle (0 = unbounded);
  /// defaults to the MSC_ORACLE_ROWS_MB knob (`serve --oracle-rows-mb`).
  /// Evicted rows re-materialize bit-identically, so solve responses never
  /// depend on it.
  std::size_t oracleRowBytes = msc::graph::defaultOracleRowBudgetBytes();
};

class Engine {
 public:
  explicit Engine(EngineConfig config = {});

  /// Parses and executes one request line. Never throws: malformed input
  /// and execution failures come back as status:"error" responses.
  std::string handleLine(const std::string& line);

  /// Executes an already-parsed request. Never throws. `queueWaitSeconds`
  /// is how long the request sat in the admission queue (0 when executed
  /// directly); it feeds the serve.queue_wait_seconds histogram and the
  /// per-request log line.
  ///
  /// Live introspection (docs/ALGORITHMS.md §18): when the request carries
  /// a `"progress"` object, `notify` (if non-null) receives one rendered
  /// `{"event":"progress",...}` line per emitted snapshot, from the solver
  /// thread, before the final response line is returned. `cancel` lets the
  /// caller share a pre-registered token (the Server registers one per
  /// admitted job so `cancel` reaches requests still in the queue); when
  /// null the engine uses a request-local token. A `"deadline_seconds"`
  /// parameter arms the token with the remaining budget (deadline minus
  /// queue wait); a fired token turns the reply into an anytime result
  /// with status "cancelled" / "deadline_exceeded".
  std::string handle(const Request& request, double queueWaitSeconds = 0.0,
                     const std::function<void(const std::string&)>* notify =
                         nullptr,
                     util::CancelToken* cancel = nullptr);

  /// True once a shutdown request has been executed.
  bool shutdownRequested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }

  InstanceCache& cache() noexcept { return cache_; }
  const EngineConfig& config() const noexcept { return config_; }

  /// Extra fields merged into every `stats` response (the Server injects
  /// queue depth/limit and overload counts). Set before serving traffic.
  void setStatsHook(std::function<void(json::Object&)> hook) {
    statsHook_ = std::move(hook);
  }

  /// Extra readiness condition ANDed into `health` replies (the Server
  /// wires the process-wide shutdown flag in). Set before serving traffic.
  void setReadyHook(std::function<bool()> hook) {
    readyHook_ = std::move(hook);
  }

  /// Extra cancellation targets consulted by the `cancel` command after the
  /// engine's own executing-request registry: the Server wires the
  /// admission queue's per-job tokens in, so a cancel reaches requests that
  /// are admitted but not yet executing. Returns true when a matching
  /// request was found and its token fired.
  void setCancelHook(std::function<bool(const std::string&)> hook) {
    cancelHook_ = std::move(hook);
  }

  /// Current admission-queue depth for the msc_serve_requests_inflight
  /// {phase="queued"} gauge (the Server wires its queue in; 0 when unset).
  void setQueueDepthHook(std::function<std::size_t()> hook) {
    queueDepthHook_ = std::move(hook);
  }

  /// Readiness as `health` reports it: false once shutdown was requested
  /// (draining) or the ready hook vetoes.
  bool ready() const;

  /// Prometheus text exposition: the global metrics registry plus serve-
  /// level gauges computed here (msc_serve_oracle_bytes by backend). Used
  /// by the `metrics` command and the GET /metrics endpoint.
  std::string metricsText() const;

 private:
  json::Object dispatch(const Request& request, std::uint64_t& gainEvals,
                        util::CancelToken& cancel);
  json::Object cmdLoadGraph(const Request& request);
  json::Object cmdLoadPairs(const Request& request);
  json::Object cmdSolve(const Request& request, std::uint64_t& gainEvals);
  json::Object cmdEval(const Request& request);
  json::Object cmdStats(const Request& request);
  json::Object cmdMetrics(const Request& request);
  json::Object cmdHealth(const Request& request);
  json::Object cmdCancel(const Request& request);
  /// Resolves a client-supplied graph/pairs reference: an alias registered
  /// via load_*'s "as" field, or a raw content key.
  std::string resolveKey(const std::string& ref);
  void registerAlias(const std::string& alias, const std::string& key);

  EngineConfig config_;
  InstanceCache cache_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> cancelledClient_{0};
  std::atomic<std::uint64_t> cancelledDeadline_{0};
  std::atomic<std::int64_t> executing_{0};
  std::function<void(json::Object&)> statsHook_;
  std::function<bool()> readyHook_;
  std::function<bool(const std::string&)> cancelHook_;
  std::function<std::size_t()> queueDepthHook_;
  std::chrono::steady_clock::time_point start_;
  mutable std::mutex aliasMu_;
  std::map<std::string, std::string> aliases_;
  /// Tokens of currently-executing requests keyed by the JSON-rendered
  /// request id; `cancel` fires every match (duplicate client ids are the
  /// client's problem — all of them stop).
  mutable std::mutex inflightMu_;
  std::multimap<std::string, util::CancelToken*> inflightTokens_;
};

struct ServerConfig {
  EngineConfig engine;
  /// Pending (admitted, not yet executing) requests before new ones are
  /// answered status:"overloaded".
  std::size_t queueLimit = 64;
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// JSONL loop over iostreams (tests; also fine for pipes). Blocks until
  /// EOF, a shutdown request, or requestShutdown(); drains admitted
  /// requests before returning. Returns 0 on clean shutdown.
  /// Note: a blocking istream read cannot be interrupted mid-call — with a
  /// terminal attached use serveFd, whose poll loop notices flags promptly.
  int serveStream(std::istream& in, std::ostream& out);

  /// Same protocol over raw file descriptors (poll-based reader, reacts to
  /// shutdown within ~200 ms even while idle). The CLI's stdio front end
  /// is serveFd(0, 1).
  int serveFd(int inFd, int outFd);

  /// Unix-domain-socket front end: binds `path` (an existing socket file
  /// is replaced), accepts any number of concurrent connections, shares
  /// the one admission queue + executor across them. Returns 0 on clean
  /// shutdown, throws std::runtime_error when the socket cannot be set up.
  int serveUnixSocket(const std::string& path);

  /// Starts a plain-HTTP telemetry listener on 127.0.0.1:`port` (0 picks an
  /// ephemeral port) running on its own thread beside any serve front end:
  ///   GET /metrics -> 200, Prometheus text exposition of the registry
  ///   GET /healthz -> 200 "ok" while ready, 503 "draining" afterwards
  /// Returns the bound port; throws std::runtime_error on bind failure.
  /// Stopped (thread joined, socket closed) by stopMetricsHttp() or the
  /// destructor; also exits by itself once shutdown is requested.
  int startMetricsHttp(int port);
  void stopMetricsHttp();

  Engine& engine() noexcept { return engine_; }
  const ServerConfig& config() const noexcept { return config_; }
  /// Overload rejections since construction.
  std::uint64_t overloadedCount() const noexcept {
    return overloaded_.load(std::memory_order_relaxed);
  }

  /// Async-signal-safe global stop flag shared by every Server in the
  /// process: an atomic store, suitable for direct use in a SIGINT/SIGTERM
  /// handler. Serving loops notice it, stop admitting, drain and return.
  static void requestShutdown() noexcept;
  static bool shutdownRequested() noexcept;
  /// Re-arms after a handled shutdown (tests run many servers per process).
  static void clearShutdownFlag() noexcept;

 private:
  friend struct ServerRun;  // per-front-end queue/executor machinery (.cpp)

  /// Answers one already-accepted telemetry HTTP connection (no keep-alive).
  void serveOneMetricsHttpConn(int conn);

  ServerConfig config_;
  Engine engine_;
  std::atomic<std::uint64_t> overloaded_{0};
  std::atomic<std::size_t> queueDepth_{0};
  std::atomic<bool> metricsHttpStop_{false};
  int metricsHttpFd_ = -1;
  std::thread metricsHttpThread_;
};

}  // namespace msc::serve
