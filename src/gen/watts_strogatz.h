// Watts–Strogatz small-world generator.
//
// A ring lattice (each node linked to its `neighbors` nearest ring
// neighbors on each side) with each lattice edge rewired to a random
// endpoint with probability `rewireProbability`. Small-world graphs stress
// the MSC algorithms differently from RG/Gowalla: high clustering plus a
// few long-range links means shortcut value concentrates on bridging the
// ring's far side.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace msc::gen {

struct WattsStrogatzConfig {
  int nodes = 60;
  /// Ring neighbors on EACH side (total base degree = 2 * neighbors).
  int neighbors = 2;
  double rewireProbability = 0.1;
  /// Edge lengths drawn uniformly from [lengthMin, lengthMax].
  double lengthMin = 0.05;
  double lengthMax = 0.5;
  std::uint64_t seed = 1;
};

msc::graph::Graph wattsStrogatz(const WattsStrogatzConfig& config);

}  // namespace msc::gen
