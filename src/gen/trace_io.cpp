#include "gen/trace_io.h"

#include <istream>
#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace msc::gen {

void writeTraceCsv(std::ostream& os, const MobilityTrace& trace) {
  os << "t,node,x,y,group\n";
  os.precision(17);
  for (std::size_t t = 0; t < trace.positions.size(); ++t) {
    for (int node = 0; node < trace.nodeCount; ++node) {
      const auto& p = trace.positions[t][static_cast<std::size_t>(node)];
      os << t << ',' << node << ',' << p.x << ',' << p.y << ','
         << trace.groupOf[static_cast<std::size_t>(node)] << '\n';
    }
  }
}

namespace {

struct Row {
  int t;
  int node;
  double x;
  double y;
  int group;
};

Row parseRow(const std::string& line) {
  std::istringstream ss(line);
  Row row{};
  char comma = 0;
  if (!(ss >> row.t >> comma && comma == ',' && ss >> row.node >> comma &&
        comma == ',' && ss >> row.x >> comma && comma == ',' &&
        ss >> row.y >> comma && comma == ',' && ss >> row.group)) {
    throw std::runtime_error("readTraceCsv: malformed row: " + line);
  }
  if (row.t < 0 || row.node < 0 || row.group < 0) {
    throw std::runtime_error("readTraceCsv: negative index in row: " + line);
  }
  return row;
}

}  // namespace

MobilityTrace readTraceCsv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("readTraceCsv: empty input");
  }
  // Header is required but tolerated with varying whitespace.
  if (line.find("t,node") == std::string::npos) {
    throw std::runtime_error("readTraceCsv: missing header row");
  }

  std::vector<Row> rows;
  int maxT = -1;
  int maxNode = -1;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    rows.push_back(parseRow(line));
    maxT = std::max(maxT, rows.back().t);
    maxNode = std::max(maxNode, rows.back().node);
  }
  if (rows.empty()) throw std::runtime_error("readTraceCsv: no samples");

  const int times = maxT + 1;
  const int nodes = maxNode + 1;
  MobilityTrace trace;
  trace.nodeCount = nodes;
  trace.groupOf.assign(static_cast<std::size_t>(nodes), -1);
  trace.positions.assign(static_cast<std::size_t>(times),
                         std::vector<Point>(static_cast<std::size_t>(nodes)));
  std::vector<std::vector<char>> seen(
      static_cast<std::size_t>(times),
      std::vector<char>(static_cast<std::size_t>(nodes), 0));

  for (const Row& row : rows) {
    auto& flag = seen[static_cast<std::size_t>(row.t)]
                     [static_cast<std::size_t>(row.node)];
    if (flag) {
      throw std::runtime_error("readTraceCsv: duplicate (t, node) sample");
    }
    flag = 1;
    trace.positions[static_cast<std::size_t>(row.t)]
                   [static_cast<std::size_t>(row.node)] = {row.x, row.y};
    auto& grp = trace.groupOf[static_cast<std::size_t>(row.node)];
    if (grp == -1) {
      grp = row.group;
    } else if (grp != row.group) {
      throw std::runtime_error("readTraceCsv: node changes group mid-trace");
    }
  }
  for (const auto& perTime : seen) {
    for (const char flag : perTime) {
      if (!flag) {
        throw std::runtime_error(
            "readTraceCsv: missing (t, node) sample — trace is not dense");
      }
    }
  }
  return trace;
}

}  // namespace msc::gen
