#include "gen/dynamic_series.h"

#include <stdexcept>

namespace msc::gen {

std::vector<SpatialNetwork> buildDynamicSeries(
    const MobilityTrace& trace, const DynamicSeriesConfig& config) {
  if (!(config.radioRangeMeters > 0.0)) {
    throw std::invalid_argument("buildDynamicSeries: radio range must be > 0");
  }
  int n = trace.nodeCount;
  if (config.maxNodes > 0 && config.maxNodes < n) n = config.maxNodes;

  std::vector<SpatialNetwork> series;
  series.reserve(trace.positions.size());
  for (const auto& snapshot : trace.positions) {
    if (static_cast<int>(snapshot.size()) < n) {
      throw std::invalid_argument(
          "buildDynamicSeries: trace snapshot smaller than node count");
    }
    SpatialNetwork net;
    net.graph = msc::graph::Graph(n);
    net.positions.assign(snapshot.begin(), snapshot.begin() + n);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const double d = euclidean(net.positions[static_cast<std::size_t>(i)],
                                   net.positions[static_cast<std::size_t>(j)]);
        if (d < config.radioRangeMeters) {
          net.graph.addEdge(i, j, config.failure.lengthAt(d));
        }
      }
    }
    series.push_back(std::move(net));
  }
  return series;
}

}  // namespace msc::gen
