#include "gen/gowalla.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace msc::gen {

SpatialNetwork gowallaLike(const GowallaConfig& config) {
  if (config.users < 0) {
    throw std::invalid_argument("gowallaLike: negative user count");
  }
  if (config.anchors <= 0 || config.venuesPerAnchor <= 0) {
    throw std::invalid_argument("gowallaLike: need at least one venue");
  }
  if (!(config.areaMeters > 0.0) || !(config.connectRadiusMeters > 0.0)) {
    throw std::invalid_argument("gowallaLike: area/radius must be positive");
  }
  util::Rng rng(config.seed);

  auto clamp01Area = [&](double v) {
    if (v < 0.0) return 0.0;
    if (v > config.areaMeters) return config.areaMeters;
    return v;
  };

  // Hot-spot anchors, then venues scattered around them.
  std::vector<Point> venues;
  venues.reserve(
      static_cast<std::size_t>(config.anchors * config.venuesPerAnchor));
  for (int a = 0; a < config.anchors; ++a) {
    const Point anchor{rng.uniform(0.0, config.areaMeters),
                       rng.uniform(0.0, config.areaMeters)};
    for (int v = 0; v < config.venuesPerAnchor; ++v) {
      venues.push_back(
          {clamp01Area(rng.gaussian(anchor.x, config.anchorSpreadMeters)),
           clamp01Area(rng.gaussian(anchor.y, config.anchorSpreadMeters))});
    }
  }

  // Zipf-like venue popularity.
  std::vector<double> cumulative(venues.size());
  double total = 0.0;
  for (std::size_t i = 0; i < venues.size(); ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), config.popularitySkew);
    cumulative[i] = total;
  }

  SpatialNetwork net;
  net.graph = msc::graph::Graph(config.users);
  net.positions.reserve(static_cast<std::size_t>(config.users));
  for (int u = 0; u < config.users; ++u) {
    const double pick = rng.uniform(0.0, total);
    std::size_t venue = 0;
    while (venue + 1 < cumulative.size() && cumulative[venue] < pick) ++venue;
    net.positions.push_back(
        {clamp01Area(rng.gaussian(venues[venue].x, config.userSpreadMeters)),
         clamp01Area(rng.gaussian(venues[venue].y, config.userSpreadMeters))});
  }

  for (int i = 0; i < config.users; ++i) {
    for (int j = i + 1; j < config.users; ++j) {
      const double d = euclidean(net.positions[static_cast<std::size_t>(i)],
                                 net.positions[static_cast<std::size_t>(j)]);
      if (d < config.connectRadiusMeters) {
        net.graph.addEdge(i, j, config.failure.lengthAt(d));
      }
    }
  }
  return net;
}

}  // namespace msc::gen
