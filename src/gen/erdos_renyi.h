// Erdős–Rényi G(n, p) generator.
//
// Not used by the paper's evaluation, but a standard non-spatial substrate
// for the test suite and for exercising the algorithms on topologies without
// geometric locality (where single shortcuts help fewer pairs).
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace msc::gen {

struct ErdosRenyiConfig {
  int nodes = 50;
  /// Independent edge probability.
  double edgeProbability = 0.1;
  /// Edge lengths drawn uniformly from [lengthMin, lengthMax].
  double lengthMin = 0.05;
  double lengthMax = 0.5;
  std::uint64_t seed = 1;
};

msc::graph::Graph erdosRenyi(const ErdosRenyiConfig& config);

}  // namespace msc::gen
