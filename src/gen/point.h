// 2-D geometry primitives shared by the spatial generators.
#pragma once

#include <cmath>
#include <vector>

#include "graph/graph.h"

namespace msc::gen {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

inline double euclidean(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::hypot(dx, dy);
}

/// A graph together with the geographic layout that produced it. All
/// spatial generators return this; the layout feeds the link-failure model,
/// DOT export, and the mobility pipeline.
struct SpatialNetwork {
  msc::graph::Graph graph;
  std::vector<Point> positions;
};

}  // namespace msc::gen
