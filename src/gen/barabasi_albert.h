// Barabási–Albert preferential-attachment generator.
//
// A scale-free substrate used by tests and ablations to check the MSC
// algorithms on hub-dominated topologies (shortcuts near hubs are highly
// shared), complementing the paper's geometric graphs.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace msc::gen {

struct BarabasiAlbertConfig {
  int nodes = 50;
  /// Edges attached from each new node (also the size of the initial clique).
  int attachEdges = 2;
  /// Edge lengths drawn uniformly from [lengthMin, lengthMax].
  double lengthMin = 0.05;
  double lengthMax = 0.5;
  std::uint64_t seed = 1;
};

msc::graph::Graph barabasiAlbert(const BarabasiAlbertConfig& config);

}  // namespace msc::gen
