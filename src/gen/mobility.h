// Tactical group-mobility trace generator (ARL trace substitute).
//
// The paper's dynamic-network experiments (§VII-E) replay mobility traces
// from the US Army Research Laboratory: 90 nodes in 7 squads moving during
// a tactical operation. Those traces are not redistributable, so this
// module implements the standard synthetic stand-in for exactly that kind
// of movement: Reference-Point Group Mobility (RPGM). Group leaders follow
// a random-waypoint walk across the operation area; members hold formation
// as a bounded Gaussian random walk around their leader. Sampling node
// positions at T instants yields the series of topologies G_1..G_T that
// §VI's dynamic MSC objective consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "gen/point.h"

namespace msc::gen {

struct MobilityConfig {
  int groups = 7;
  int nodesPerGroup = 13;            // ~ paper's 90 nodes in 7 groups
  double areaMeters = 2000.0;        // operation area side
  double speedMin = 1.0;             // leader speed range, m/s
  double speedMax = 5.0;
  double pauseSeconds = 10.0;        // pause at each waypoint
  double groupRadiusMeters = 120.0;  // members stay within this of leader
  double memberStepMeters = 15.0;    // per-step member jitter (std-dev)
  double sampleIntervalSeconds = 60.0;
  int timeInstances = 30;            // T
  std::uint64_t seed = 11;
};

/// positions[t][node] for t in [0, timeInstances).
struct MobilityTrace {
  int nodeCount = 0;
  std::vector<int> groupOf;                     // node -> group id
  std::vector<std::vector<Point>> positions;    // [time][node]
};

/// Simulates RPGM and samples positions at fixed intervals. Deterministic
/// in the seed.
MobilityTrace referencePointGroupMobility(const MobilityConfig& config);

}  // namespace msc::gen
