// Synthetic location-based social network — Gowalla substitute.
//
// The paper evaluates on a Gowalla (SNAP) subset: users who checked in near
// Austin, TX on one evening, connected when their check-in locations are
// within 200 m (n = 134, 1886 edges). We do not ship that proprietary-ish
// trace; instead this generator reproduces the *structure* the paper's
// analysis relies on (§VII-D): people check in at venues, so users form
// dense co-located clusters (near-cliques at restaurants/bars) that are
// geographically separated, and one shortcut between two clusters maintains
// many social pairs at once.
//
// Model: anchor points (activity hot-spots) are placed uniformly in a
// square city area; each anchor spawns a few venues with Gaussian spread;
// users pick a venue (preferring earlier-listed, size-skewed) and jitter
// around it; users closer than `connectRadiusMeters` are connected. Edge
// reliability follows the distance-proportional failure model, matching
// §VII-A3. Defaults are calibrated to the paper's n/edge statistics.
#pragma once

#include <cstdint>

#include "gen/point.h"
#include "wireless/link_model.h"

namespace msc::gen {

struct GowallaConfig {
  int users = 134;
  int anchors = 6;
  int venuesPerAnchor = 3;
  /// City area side, meters.
  double areaMeters = 2500.0;
  /// Venue spread around its anchor (std-dev, meters).
  double anchorSpreadMeters = 90.0;
  /// User spread around their venue (std-dev, meters).
  double userSpreadMeters = 45.0;
  /// Connect users closer than this (paper: 200 m).
  double connectRadiusMeters = 200.0;
  /// Skew of venue popularity: probability mass of venue i proportional to
  /// 1 / (i + 1)^popularitySkew.
  double popularitySkew = 0.7;
  /// Failure model: slope per meter; defaults give p ~= 0.22 at 200 m.
  msc::wireless::DistanceProportionalFailure failure{0.0011, 0.95};
  // Default seed calibrated to land near the paper's 1886-edge subset.
  std::uint64_t seed = 9;
};

/// Generates one synthetic check-in network. Deterministic in the seed.
SpatialNetwork gowallaLike(const GowallaConfig& config);

}  // namespace msc::gen
