// Dynamic topology series: mobility trace -> G_1..G_T (paper §VI).
//
// Each sampled time instant becomes one SpatialNetwork: nodes within radio
// range are linked, link reliability follows the distance-proportional
// failure model. The dynamic MSC objective then sums maintained connections
// across these instances.
#pragma once

#include <vector>

#include "gen/mobility.h"
#include "gen/point.h"
#include "wireless/link_model.h"

namespace msc::gen {

struct DynamicSeriesConfig {
  /// Radio range: nodes closer than this are linked, meters.
  double radioRangeMeters = 300.0;
  /// Link failure model applied to geographic link length.
  msc::wireless::DistanceProportionalFailure failure{0.0009, 0.95};
  /// Optional truncation: use only the first `maxNodes` nodes of the trace
  /// (the paper's Fig. 5 uses n = 50 of the 90-node trace); <= 0 keeps all.
  int maxNodes = 0;
};

/// One network per time instance of the trace.
std::vector<SpatialNetwork> buildDynamicSeries(const MobilityTrace& trace,
                                               const DynamicSeriesConfig& config);

}  // namespace msc::gen
