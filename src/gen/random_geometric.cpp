#include "gen/random_geometric.h"

#include <stdexcept>

#include "graph/components.h"
#include "util/rng.h"

namespace msc::gen {

SpatialNetwork randomGeometric(const RandomGeometricConfig& config) {
  if (config.nodes < 0) {
    throw std::invalid_argument("randomGeometric: negative node count");
  }
  if (!(config.radius > 0.0)) {
    throw std::invalid_argument("randomGeometric: radius must be > 0");
  }
  util::Rng rng(config.seed);
  SpatialNetwork net;
  net.graph = msc::graph::Graph(config.nodes);
  net.positions.reserve(static_cast<std::size_t>(config.nodes));
  for (int i = 0; i < config.nodes; ++i) {
    net.positions.push_back({rng.uniform(), rng.uniform()});
  }
  for (int i = 0; i < config.nodes; ++i) {
    for (int j = i + 1; j < config.nodes; ++j) {
      const double d = euclidean(net.positions[static_cast<std::size_t>(i)],
                                 net.positions[static_cast<std::size_t>(j)]);
      if (d < config.radius) {
        net.graph.addEdge(i, j, config.failure.lengthAt(d));
      }
    }
  }
  return net;
}

SpatialNetwork randomGeometricConnected(RandomGeometricConfig config,
                                        double minLargestComponentFraction,
                                        int maxAttempts) {
  if (minLargestComponentFraction < 0.0 || minLargestComponentFraction > 1.0) {
    throw std::invalid_argument(
        "randomGeometricConnected: fraction outside [0, 1]");
  }
  for (int attempt = 0; attempt < maxAttempts; ++attempt) {
    SpatialNetwork net = randomGeometric(config);
    const int largest = msc::graph::largestComponentSize(net.graph);
    if (static_cast<double>(largest) >=
        minLargestComponentFraction * static_cast<double>(config.nodes)) {
      return net;
    }
    ++config.seed;
  }
  throw std::runtime_error(
      "randomGeometricConnected: no sufficiently connected instance found; "
      "increase radius or maxAttempts");
}

}  // namespace msc::gen
