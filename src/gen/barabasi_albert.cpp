#include "gen/barabasi_albert.h"

#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace msc::gen {

msc::graph::Graph barabasiAlbert(const BarabasiAlbertConfig& config) {
  if (config.attachEdges < 1) {
    throw std::invalid_argument("barabasiAlbert: attachEdges must be >= 1");
  }
  if (config.nodes <= config.attachEdges) {
    throw std::invalid_argument(
        "barabasiAlbert: nodes must exceed attachEdges");
  }
  if (!(config.lengthMin >= 0.0) || config.lengthMax < config.lengthMin) {
    throw std::invalid_argument("barabasiAlbert: invalid length range");
  }
  util::Rng rng(config.seed);
  msc::graph::Graph g(config.nodes);
  auto randomLength = [&] {
    return rng.uniform(config.lengthMin, config.lengthMax);
  };

  // Repeated-endpoints list: sampling uniformly from it is sampling
  // proportionally to degree (the classic BA construction).
  std::vector<int> endpoints;
  const int seedNodes = config.attachEdges;
  for (int i = 0; i < seedNodes; ++i) {
    for (int j = i + 1; j < seedNodes; ++j) {
      g.addEdge(i, j, randomLength());
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  }
  if (seedNodes == 1) endpoints.push_back(0);  // lone seed node, degree 0

  for (int v = seedNodes; v < config.nodes; ++v) {
    std::vector<int> targets;
    targets.reserve(static_cast<std::size_t>(config.attachEdges));
    // Rejection-sample distinct targets by preferential attachment.
    while (static_cast<int>(targets.size()) < config.attachEdges) {
      const int cand = endpoints[rng.below(endpoints.size())];
      bool duplicate = false;
      for (const int t : targets) {
        if (t == cand) duplicate = true;
      }
      if (!duplicate) targets.push_back(cand);
    }
    for (const int t : targets) {
      g.addEdge(v, t, randomLength());
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return g;
}

}  // namespace msc::gen
