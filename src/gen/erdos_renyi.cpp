#include "gen/erdos_renyi.h"

#include <stdexcept>

#include "util/rng.h"

namespace msc::gen {

msc::graph::Graph erdosRenyi(const ErdosRenyiConfig& config) {
  if (config.nodes < 0) {
    throw std::invalid_argument("erdosRenyi: negative node count");
  }
  if (config.edgeProbability < 0.0 || config.edgeProbability > 1.0) {
    throw std::invalid_argument("erdosRenyi: probability outside [0, 1]");
  }
  if (!(config.lengthMin >= 0.0) || config.lengthMax < config.lengthMin) {
    throw std::invalid_argument("erdosRenyi: invalid length range");
  }
  util::Rng rng(config.seed);
  msc::graph::Graph g(config.nodes);
  for (int i = 0; i < config.nodes; ++i) {
    for (int j = i + 1; j < config.nodes; ++j) {
      if (rng.chance(config.edgeProbability)) {
        g.addEdge(i, j, rng.uniform(config.lengthMin, config.lengthMax));
      }
    }
  }
  return g;
}

}  // namespace msc::gen
