// Mobility trace serialization.
//
// The dynamic experiments run on synthetic RPGM traces, but the format here
// lets users substitute real traces (e.g. the ARL NSRL tactical traces the
// paper used, for those with access): a plain CSV with one row per
// (time, node) sample. Reading validates shape (every instant covers every
// node exactly once).
//
// Format (header required):
//   t,node,x,y,group
//   0,0,102.5,913.0,0
//   ...
#pragma once

#include <iosfwd>

#include "gen/mobility.h"

namespace msc::gen {

/// Writes the CSV representation of a trace.
void writeTraceCsv(std::ostream& os, const MobilityTrace& trace);

/// Parses the CSV representation. Throws std::runtime_error on malformed
/// input, missing samples, or inconsistent group assignments.
MobilityTrace readTraceCsv(std::istream& is);

}  // namespace msc::gen
