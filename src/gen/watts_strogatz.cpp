#include "gen/watts_strogatz.h"

#include <stdexcept>
#include <unordered_set>

#include "util/rng.h"

namespace msc::gen {

msc::graph::Graph wattsStrogatz(const WattsStrogatzConfig& config) {
  if (config.neighbors < 1) {
    throw std::invalid_argument("wattsStrogatz: neighbors must be >= 1");
  }
  if (config.nodes <= 2 * config.neighbors) {
    throw std::invalid_argument(
        "wattsStrogatz: nodes must exceed 2 * neighbors");
  }
  if (config.rewireProbability < 0.0 || config.rewireProbability > 1.0) {
    throw std::invalid_argument(
        "wattsStrogatz: rewire probability outside [0, 1]");
  }
  if (!(config.lengthMin >= 0.0) || config.lengthMax < config.lengthMin) {
    throw std::invalid_argument("wattsStrogatz: invalid length range");
  }

  util::Rng rng(config.seed);
  const int n = config.nodes;
  // Track edges as normalized (a, b) keys to avoid duplicates on rewire.
  std::unordered_set<long long> present;
  auto key = [n](int a, int b) {
    if (a > b) std::swap(a, b);
    return static_cast<long long>(a) * n + b;
  };

  std::vector<std::pair<int, int>> edges;
  for (int v = 0; v < n; ++v) {
    for (int j = 1; j <= config.neighbors; ++j) {
      const int w = (v + j) % n;
      edges.push_back({v, w});
      present.insert(key(v, w));
    }
  }
  for (auto& [u, v] : edges) {
    if (!rng.chance(config.rewireProbability)) continue;
    // Rewire the far endpoint to a uniform random node, avoiding self-loops
    // and duplicates; give up after a few tries (dense corner cases).
    for (int attempt = 0; attempt < 16; ++attempt) {
      const int w = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      if (w == u || present.count(key(u, w)) != 0) continue;
      present.erase(key(u, v));
      present.insert(key(u, w));
      v = w;
      break;
    }
  }

  msc::graph::Graph g(n);
  for (const auto& [u, v] : edges) {
    g.addEdge(u, v, rng.uniform(config.lengthMin, config.lengthMax));
  }
  return g;
}

}  // namespace msc::gen
