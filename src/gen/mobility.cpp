#include "gen/mobility.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace msc::gen {

namespace {

// Random-waypoint state for one group leader.
struct LeaderState {
  Point position;
  Point destination;
  double speed = 0.0;      // m/s; 0 while paused
  double pauseLeft = 0.0;  // seconds of pause remaining
};

void pickNewLeg(LeaderState& leader, const MobilityConfig& cfg,
                util::Rng& rng) {
  leader.destination = {rng.uniform(0.0, cfg.areaMeters),
                        rng.uniform(0.0, cfg.areaMeters)};
  leader.speed = rng.uniform(cfg.speedMin, cfg.speedMax);
}

// Advance a leader by dt seconds of random-waypoint motion.
void stepLeader(LeaderState& leader, const MobilityConfig& cfg,
                util::Rng& rng, double dt) {
  while (dt > 0.0) {
    if (leader.pauseLeft > 0.0) {
      const double pause = std::min(leader.pauseLeft, dt);
      leader.pauseLeft -= pause;
      dt -= pause;
      if (leader.pauseLeft <= 0.0) pickNewLeg(leader, cfg, rng);
      continue;
    }
    const double dx = leader.destination.x - leader.position.x;
    const double dy = leader.destination.y - leader.position.y;
    const double remaining = std::hypot(dx, dy);
    const double reachable = leader.speed * dt;
    if (reachable >= remaining || remaining == 0.0) {
      leader.position = leader.destination;
      dt -= (leader.speed > 0.0) ? remaining / leader.speed : dt;
      leader.pauseLeft = cfg.pauseSeconds;
      if (leader.pauseLeft <= 0.0) pickNewLeg(leader, cfg, rng);
    } else {
      const double frac = reachable / remaining;
      leader.position.x += dx * frac;
      leader.position.y += dy * frac;
      dt = 0.0;
    }
  }
}

}  // namespace

MobilityTrace referencePointGroupMobility(const MobilityConfig& cfg) {
  if (cfg.groups <= 0 || cfg.nodesPerGroup <= 0) {
    throw std::invalid_argument("mobility: groups and nodesPerGroup must be > 0");
  }
  if (cfg.timeInstances <= 0) {
    throw std::invalid_argument("mobility: timeInstances must be > 0");
  }
  if (!(cfg.areaMeters > 0.0) || !(cfg.groupRadiusMeters >= 0.0)) {
    throw std::invalid_argument("mobility: invalid geometry parameters");
  }
  if (!(cfg.speedMin > 0.0) || cfg.speedMax < cfg.speedMin) {
    throw std::invalid_argument("mobility: invalid speed range");
  }

  util::Rng rng(cfg.seed);
  const int n = cfg.groups * cfg.nodesPerGroup;

  MobilityTrace trace;
  trace.nodeCount = n;
  trace.groupOf.resize(static_cast<std::size_t>(n));
  trace.positions.assign(
      static_cast<std::size_t>(cfg.timeInstances),
      std::vector<Point>(static_cast<std::size_t>(n)));

  std::vector<LeaderState> leaders(static_cast<std::size_t>(cfg.groups));
  for (auto& leader : leaders) {
    leader.position = {rng.uniform(0.0, cfg.areaMeters),
                       rng.uniform(0.0, cfg.areaMeters)};
    pickNewLeg(leader, cfg, rng);
  }

  // Member offsets relative to their leader; evolve as a clamped random walk
  // so formations drift realistically but never disperse.
  std::vector<Point> offsets(static_cast<std::size_t>(n));
  for (int g = 0; g < cfg.groups; ++g) {
    for (int i = 0; i < cfg.nodesPerGroup; ++i) {
      const int node = g * cfg.nodesPerGroup + i;
      trace.groupOf[static_cast<std::size_t>(node)] = g;
      const double angle = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
      const double radius = cfg.groupRadiusMeters * std::sqrt(rng.uniform());
      offsets[static_cast<std::size_t>(node)] = {radius * std::cos(angle),
                                                 radius * std::sin(angle)};
    }
  }

  auto clampOffset = [&](Point& o) {
    const double r = std::hypot(o.x, o.y);
    if (r > cfg.groupRadiusMeters && r > 0.0) {
      const double scale = cfg.groupRadiusMeters / r;
      o.x *= scale;
      o.y *= scale;
    }
  };
  auto clampArea = [&](double v) {
    return std::clamp(v, 0.0, cfg.areaMeters);
  };

  for (int t = 0; t < cfg.timeInstances; ++t) {
    if (t > 0) {
      for (auto& leader : leaders) {
        stepLeader(leader, cfg, rng, cfg.sampleIntervalSeconds);
      }
      for (auto& o : offsets) {
        o.x += rng.gaussian(0.0, cfg.memberStepMeters);
        o.y += rng.gaussian(0.0, cfg.memberStepMeters);
        clampOffset(o);
      }
    }
    for (int node = 0; node < n; ++node) {
      const auto& leader =
          leaders[static_cast<std::size_t>(trace.groupOf[static_cast<std::size_t>(node)])];
      auto& p = trace.positions[static_cast<std::size_t>(t)]
                               [static_cast<std::size_t>(node)];
      p.x = clampArea(leader.position.x + offsets[static_cast<std::size_t>(node)].x);
      p.y = clampArea(leader.position.y + offsets[static_cast<std::size_t>(node)].y);
    }
  }
  return trace;
}

}  // namespace msc::gen
