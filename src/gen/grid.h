// Rectangular grid generator.
//
// Grids have exactly computable shortest paths (Manhattan distance times
// edge length), which makes them the reference substrate for the distance
// and shortcut-relaxation tests.
#pragma once

#include "gen/point.h"

namespace msc::gen {

struct GridConfig {
  int width = 5;
  int height = 5;
  /// Length assigned to every grid edge.
  double edgeLength = 1.0;
};

/// Nodes are indexed row-major: node(r, c) = r * width + c; positions are
/// unit-spaced so the layout can be drawn.
SpatialNetwork grid(const GridConfig& config);

/// Node id at (row, col) for a given config.
int gridNode(const GridConfig& config, int row, int col);

}  // namespace msc::gen
