#include "gen/grid.h"

#include <stdexcept>

namespace msc::gen {

SpatialNetwork grid(const GridConfig& config) {
  if (config.width <= 0 || config.height <= 0) {
    throw std::invalid_argument("grid: dimensions must be positive");
  }
  if (!(config.edgeLength >= 0.0)) {
    throw std::invalid_argument("grid: edge length must be >= 0");
  }
  const int n = config.width * config.height;
  SpatialNetwork net;
  net.graph = msc::graph::Graph(n);
  net.positions.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < config.height; ++r) {
    for (int c = 0; c < config.width; ++c) {
      net.positions.push_back(
          {static_cast<double>(c), static_cast<double>(r)});
    }
  }
  for (int r = 0; r < config.height; ++r) {
    for (int c = 0; c < config.width; ++c) {
      const int v = gridNode(config, r, c);
      if (c + 1 < config.width) {
        net.graph.addEdge(v, gridNode(config, r, c + 1), config.edgeLength);
      }
      if (r + 1 < config.height) {
        net.graph.addEdge(v, gridNode(config, r + 1, c), config.edgeLength);
      }
    }
  }
  return net;
}

int gridNode(const GridConfig& config, int row, int col) {
  if (row < 0 || row >= config.height || col < 0 || col >= config.width) {
    throw std::out_of_range("gridNode: coordinates out of range");
  }
  return row * config.width + col;
}

}  // namespace msc::gen
