// Random Geometric (RG) graph generator — the paper's synthetic topology.
//
// Nodes are placed uniformly at random in the unit square and connected
// when their Euclidean distance is below `radius` (§VII-A1). Edge lengths
// come from the distance-proportional failure model (§VII-A3), so longer
// radio links are less reliable.
#pragma once

#include <cstdint>

#include "gen/point.h"
#include "wireless/link_model.h"

namespace msc::gen {

struct RandomGeometricConfig {
  int nodes = 100;
  /// Connection radius in unit-square coordinates.
  double radius = 0.15;
  /// Link failure model applied to the geographic edge length.
  msc::wireless::DistanceProportionalFailure failure{0.35, 0.95};
  std::uint64_t seed = 1;
};

/// Generates one RG network. Deterministic in the seed.
SpatialNetwork randomGeometric(const RandomGeometricConfig& config);

/// Generates RG networks until the largest connected component covers at
/// least `minLargestComponentFraction` of the nodes (bumping the seed), up
/// to `maxAttempts`; throws std::runtime_error when none qualifies. The
/// paper's experiments implicitly use connected instances.
SpatialNetwork randomGeometricConnected(RandomGeometricConfig config,
                                        double minLargestComponentFraction = 0.95,
                                        int maxAttempts = 64);

}  // namespace msc::gen
