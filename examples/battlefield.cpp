// Battlefield scenario (paper §I): a platoon commander must keep reliable
// links to every squad leader — the MSC-CN special case, where all
// important pairs share a common node.
//
// We lay the platoon out with the RPGM mobility model (one snapshot), make
// the commander node 0, and require connections to the leader of each
// squad. Because all pairs share the commander, the coverage greedy of
// §IV-B applies with its (1 - 1/e) guarantee; we compare it against
// sigma-greedy on the same restricted space and against naive direct
// connection.
//
// Build & run:  ./examples/battlefield
#include <iostream>

#include "core/candidates.h"
#include "core/common_node.h"
#include "core/greedy.h"
#include "core/instance.h"
#include "core/sigma.h"
#include "gen/dynamic_series.h"
#include "gen/mobility.h"
#include "graph/apsp.h"
#include "wireless/link_model.h"

int main() {
  using namespace msc;

  // A platoon: 7 squads x 8 soldiers moving in a 2 km operation area.
  gen::MobilityConfig mob;
  mob.groups = 7;
  mob.nodesPerGroup = 8;
  mob.timeInstances = 1;  // one snapshot for this example
  mob.seed = 42;
  const auto trace = gen::referencePointGroupMobility(mob);

  gen::DynamicSeriesConfig radio;
  radio.radioRangeMeters = 300.0;
  radio.failure = wireless::DistanceProportionalFailure(0.0012, 0.95);
  auto series = gen::buildDynamicSeries(trace, radio);
  auto& net = series.front();
  std::cout << "platoon network: " << net.graph.nodeCount() << " soldiers, "
            << net.graph.edgeCount() << " radio links\n";

  // Commander = node 0 (squad 0); squad leaders = first member of each
  // other squad.
  const graph::NodeId commander = 0;
  std::vector<core::SocialPair> pairs;
  for (int g = 1; g < mob.groups; ++g) {
    pairs.push_back({commander, g * mob.nodesPerGroup});
  }

  const double pt = 0.15;  // required command-link reliability: 85%
  const double dt = wireless::failureThresholdToDistance(pt);
  core::Instance instance(std::move(net.graph), std::move(pairs), dt);

  std::cout << "command links required to " << instance.pairCount()
            << " squad leaders, p_fail <= " << pt << "\n";
  int broken = 0;
  for (const auto& p : instance.pairs()) {
    if (!instance.baseSatisfied(p)) ++broken;
  }
  std::cout << broken << " command links currently broken\n\n";

  const int k = 3;  // three satellite uplinks available
  std::cout << "placing k = " << k << " satellite links...\n";

  // Coverage greedy (Theorem 5: within (1 - 1/e) of optimal).
  const auto coverage = core::solveCommonNodeCoverage(instance, commander, k);
  std::cout << "  coverage greedy:   " << coverage.sigma << " / "
            << instance.pairCount() << " leaders reachable; shortcuts:";
  for (const auto& f : coverage.placement) {
    std::cout << " (" << f.a << "-" << f.b << ")";
  }
  std::cout << '\n';

  // sigma-greedy over the same commander-incident space — should agree.
  const auto viaSigma =
      core::solveCommonNodeSigmaGreedy(instance, commander, k);
  std::cout << "  sigma greedy:      " << viaSigma.sigma
            << " (same by Theorem 4)\n";

  // Naive baseline: connect the commander directly to the k farthest
  // leaders. Each shortcut then helps exactly one pair.
  {
    core::ShortcutList direct;
    std::vector<std::pair<double, core::SocialPair>> byDistance;
    for (const auto& p : instance.pairs()) {
      byDistance.push_back({instance.baseDistance(p), p});
    }
    std::sort(byDistance.begin(), byDistance.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (int i = 0; i < k && i < static_cast<int>(byDistance.size()); ++i) {
      direct.push_back(
          core::Shortcut::make(byDistance[static_cast<std::size_t>(i)].second.u,
                               byDistance[static_cast<std::size_t>(i)].second.w));
    }
    std::cout << "  direct-to-farthest: "
              << core::sigmaValue(instance, direct)
              << " (one pair per shortcut — wasteful)\n";
  }

  std::cout << "\nlesson: placing a link near a cluster of squads serves "
               "several command links at once — exactly the max-coverage "
               "structure of MSC-CN.\n";
  return 0;
}
