// Quickstart: the 60-second tour of the MSC link-placement API.
//
//   1. Build a wireless network (here: a random geometric graph whose link
//      failure probabilities grow with distance).
//   2. Pick the important social pairs and the reliability requirement p_t.
//   3. Ask the sandwich Approximation Algorithm (AA) for k shortcut edges.
//   4. Inspect which pairs are now maintained.
//
// Build & run:  ./examples/quickstart
#include <iostream>

#include "core/candidates.h"
#include "core/instance.h"
#include "core/sandwich.h"
#include "core/sigma.h"
#include "gen/random_geometric.h"
#include "graph/apsp.h"
#include "util/rng.h"
#include "wireless/link_model.h"

int main() {
  using namespace msc;

  // 1. A 60-node wireless network in the unit square: nodes within 0.22 of
  //    each other get a link whose failure probability is 0.5 * distance.
  gen::RandomGeometricConfig netCfg;
  netCfg.nodes = 60;
  netCfg.radius = 0.22;
  netCfg.failure = wireless::DistanceProportionalFailure(0.5, 0.95);
  netCfg.seed = 2026;
  gen::SpatialNetwork net = gen::randomGeometricConnected(netCfg);
  std::cout << "network: " << net.graph.nodeCount() << " nodes, "
            << net.graph.edgeCount() << " links\n";

  // 2. Require path failure probability <= p_t = 0.12 and sample 12
  //    important pairs that currently miss that requirement.
  const double pt = 0.12;
  const double dt = wireless::failureThresholdToDistance(pt);
  const auto baseDist = graph::allPairsDistances(net.graph);
  util::Rng rng(7);
  auto pairs = core::sampleImportantPairs(net.graph, baseDist, 12, dt, rng);
  core::Instance instance(std::move(net.graph), std::move(pairs), dt);
  std::cout << "requirement: p_fail <= " << pt << "  (distance <= " << dt
            << ")\n";
  std::cout << "important pairs: " << instance.pairCount()
            << " (all currently broken)\n";

  // 3. Place k = 3 perfectly reliable shortcut links (satellite/UAV).
  const int k = 3;
  const auto candidates =
      core::CandidateSet::allPairs(instance.graph().nodeCount());
  const auto aa = core::sandwichApproximation(instance, candidates, {.k = k});

  std::cout << "\nAA placed " << aa.placement.size() << " shortcuts:";
  for (const auto& f : aa.placement) {
    std::cout << " (" << f.a << "-" << f.b << ")";
  }
  std::cout << "\nmaintained pairs: " << aa.sigma << " / "
            << instance.pairCount() << "\n";
  if (const auto ratio = aa.dataDependentRatio()) {
    std::cout << "data-dependent guarantee: at least "
              << *ratio * (1.0 - 1.0 / 2.718281828) * 100.0
              << "% of the optimal value\n";
  }

  // 4. Per-pair status under the chosen placement.
  core::SigmaEvaluator sigma(instance);
  sigma.evaluate(aa.placement);
  std::cout << "\npair status:\n";
  for (int i = 0; i < instance.pairCount(); ++i) {
    const auto& p = instance.pairs()[static_cast<std::size_t>(i)];
    std::cout << "  {" << p.u << "," << p.w << "}  p_fail "
              << wireless::lengthToFailure(instance.baseDistance(p)) << " -> "
              << wireless::lengthToFailure(sigma.pairDistance(i))
              << (sigma.pairSatisfied(i) ? "  [maintained]" : "  [broken]")
              << '\n';
  }
  return 0;
}
