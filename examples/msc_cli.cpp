// msc_cli — command-line front end to the MSC link-placement library.
//
// Subcommands:
//   gen      generate a topology and write it as an edge list
//   pairs    sample important social pairs for a saved topology
//   solve    place shortcut edges with a chosen algorithm
//   solve-mc place shortcuts maximizing sampled multi-path reliability
//   eval     score a given placement
//   route    print the forwarding paths a placement induces
//
// Examples:
//   msc_cli gen --type rg --nodes 100 --radius 0.15 --seed 1 --out g.txt
//   msc_cli pairs --graph g.txt --pt 0.14 --m 20 --seed 1 --out pairs.txt
//   msc_cli solve --graph g.txt --pairs pairs.txt --pt 0.14 --k 6 --algo aa
//   msc_cli eval  --graph g.txt --pairs pairs.txt --pt 0.14
//                 --placement 3-41,17-88
//   msc_cli route --graph g.txt --pairs pairs.txt --pt 0.14
//                 --placement 3-41,17-88
//   msc_cli solve ... --metrics-out m.json   (solver metrics as JSON)
//   msc_cli serve --queue 64                 (JSONL solve service on stdio)
#include <csignal>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "core/aea.h"
#include "eval/report.h"
#include "obs/context.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/prom_export.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "core/candidates.h"
#include "core/ea.h"
#include "core/greedy.h"
#include "core/instance.h"
#include "core/random_baseline.h"
#include "core/routing.h"
#include "core/sandwich.h"
#include "core/sigma.h"
#include "mc/solver.h"
#include "gen/barabasi_albert.h"
#include "gen/erdos_renyi.h"
#include "gen/gowalla.h"
#include "gen/random_geometric.h"
#include "gen/watts_strogatz.h"
#include "graph/apsp.h"
#include "graph/graph_io.h"
#include "serve/server.h"
#include "util/args.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"
#include "wireless/link_model.h"

namespace {

using msc::util::Args;

int usage() {
  std::cerr <<
      "usage: msc_cli <gen|pairs|solve|solve-mc|eval|route|serve|version> "
      "[flags]\n"
      "  gen   --type rg|er|ba|ws|gowalla --out FILE [--nodes N] [--seed S]\n"
      "        [--radius R] [--prob P] [--attach M] [--neighbors K]\n"
      "  pairs --graph FILE --pt P --m M [--seed S] [--out FILE]\n"
      "  solve --graph FILE --pairs FILE --pt P --k K\n"
      "        [--algo aa|greedy|ea|aea|random] [--iters R] [--seed S]\n"
      "        [--progress] (live per-round ticker on stderr: round, value,\n"
      "        gain evals, rounds/s, ETA; results are unchanged)\n"
      "  solve-mc --graph FILE --pairs FILE --pt P --k K\n"
      "        [--algo greedy|sandwich] [--worlds W] [--seed S] [--progress]\n"
      "        maximize the sampled multi-path reliability sigma-hat over W\n"
      "        possible worlds (each link up with prob e^-length) instead of\n"
      "        the paper's shortest-path surrogate; deterministic at fixed\n"
      "        --seed for any --threads; see docs/ALGORITHMS.md sec. 17\n"
      "  eval  --graph FILE --pairs FILE --pt P --placement a-b,c-d,...\n"
      "  route --graph FILE --pairs FILE --pt P --placement a-b,c-d,...\n"
      "  serve [--listen SOCKET_PATH] [--queue N] [--cache-mb MB]\n"
      "        [--oracle-rows-mb MB] [--metrics-listen PORT]\n"
      "        [--slowreq-ms MS] [--slowreq-dir D]\n"
      "        long-running msc.serve.v1 JSONL solve service on stdin/stdout\n"
      "        (or a Unix socket with --listen); --metrics-listen starts a\n"
      "        plain-HTTP GET /metrics + /healthz endpoint on 127.0.0.1;\n"
      "        --oracle-rows-mb caps each pair-centric oracle's row cache\n"
      "        (LRU eviction, results bit-identical; also honoured as\n"
      "        MSC_ORACLE_ROWS_MB by every subcommand);\n"
      "        --slowreq-ms dumps a Perfetto trace of any request slower\n"
      "        than MS to --slowreq-dir (default out/); SIGINT/SIGTERM\n"
      "        drain and exit; see docs/ALGORITHMS.md sec. 12-14\n"
      "  version  print the version and the machine-readable schemas\n"
      "every subcommand also accepts --threads N (worker threads for APSP\n"
      "and solver gain scans; 0 = all hardware cores; results are identical\n"
      "for any N), --metrics-out FILE (solver metrics as JSON),\n"
      "--metrics-prom FILE (metrics as Prometheus text exposition), and\n"
      "--trace-out FILE (solver timeline as Chrome trace-event JSON for\n"
      "Perfetto/chrome://tracing; a .jsonl extension selects flat JSONL),\n"
      "and honours MSC_METRICS=1 (text metrics footer on stdout),\n"
      "MSC_METRICS_PROM=FILE (Prometheus export at exit), MSC_LOG=info\n"
      "(structured JSONL logs; MSC_LOG_FILE=PATH), and MSC_TRACE=1 (trace\n"
      "summary footer; MSC_TRACE_OUT=FILE to export)\n";
  return 2;
}

// Every subcommand accepts --metrics-out, --metrics-prom, --trace-out and
// --threads in addition to its own flags.
void checkFlags(const Args& args, std::vector<std::string> allowed) {
  allowed.push_back("metrics-out");
  allowed.push_back("metrics-prom");
  allowed.push_back("trace-out");
  allowed.push_back("threads");
  args.allowedFlags(allowed);
}

// --threads N: 0 = all hardware cores. Parsed through Args::getInt (so
// non-numeric values hit its error path) and range-checked by
// resolveThreadCount (negative values throw).
int threadsArg(const Args& args) {
  const int threads = static_cast<int>(args.getInt("threads", 1));
  msc::util::resolveThreadCount(threads);  // validates, throws on negative
  return threads;
}

msc::graph::Graph loadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  return msc::graph::readEdgeList(in);
}

std::vector<msc::core::SocialPair> loadPairs(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open pairs file: " + path);
  std::vector<msc::core::SocialPair> pairs;
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ss(line);
    int u = 0;
    int w = 0;
    if (!(ss >> u >> w)) {
      throw std::runtime_error("malformed pair line: " + line);
    }
    pairs.push_back({u, w});
  }
  return pairs;
}

msc::core::ShortcutList parsePlacement(const std::string& spec) {
  msc::core::ShortcutList out;
  std::istringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    const auto dash = token.find('-');
    if (dash == std::string::npos) {
      throw std::runtime_error("malformed placement entry: " + token);
    }
    out.push_back(msc::core::Shortcut::make(std::stoi(token.substr(0, dash)),
                                            std::stoi(token.substr(dash + 1))));
  }
  return out;
}

msc::core::Instance makeInstance(const Args& args) {
  auto g = loadGraph(args.requireString("graph"));
  auto pairs = loadPairs(args.requireString("pairs"));
  const double pt = args.getDouble("pt", 0.14);
  return msc::core::Instance::fromFailureThreshold(
      std::move(g), std::move(pairs), pt, threadsArg(args));
}

// --progress: live stderr ticker fed from solver round boundaries
// (docs/ALGORITHMS.md §18). One line per committed round — stderr, so
// stdout output and anything piping it stay byte-identical. Binding a
// request context around the solve is covered by the PR-6 contract: it
// cannot change what the solver computes.
class ProgressTicker {
 public:
  explicit ProgressTicker(bool enabled) {
    if (!enabled) return;
    reporter_.emplace(
        [](const msc::obs::ProgressSnapshot& s) {
          std::ostringstream line;
          line << "progress " << s.solver;
          if (*s.stage != '\0') line << '/' << s.stage;
          line << " round " << s.round;
          if (s.totalRounds >= 0) line << '/' << s.totalRounds;
          line << " value " << s.value << " gain_evals " << s.gainEvals;
          if (s.roundsPerSecond > 0.0) {
            line << " rounds_per_s "
                 << msc::util::formatFixed(s.roundsPerSecond, 1);
          }
          if (s.etaSeconds >= 0.0) {
            line << " eta_s " << msc::util::formatFixed(s.etaSeconds, 2);
          }
          std::cerr << line.str() << '\n';
        },
        /*everyMs=*/0.0);
    ctx_.emplace("cli");
    ctx_->setProgress(&*reporter_);
    bind_.emplace(&*ctx_);
  }

 private:
  std::optional<msc::obs::ProgressReporter> reporter_;
  std::optional<msc::obs::RequestContext> ctx_;
  std::optional<msc::obs::ScopedRequestBind> bind_;
};

int cmdGen(const Args& args) {
  checkFlags(args, {"type", "out", "nodes", "seed", "radius", "prob", "attach",
                    "neighbors"});
  threadsArg(args);  // accepted (and validated) everywhere; gen has no APSP
  const std::string type = args.getString("type", "rg");
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  const int nodes = static_cast<int>(args.getInt("nodes", 100));
  msc::graph::Graph g(0);
  if (type == "rg") {
    msc::gen::RandomGeometricConfig cfg;
    cfg.nodes = nodes;
    cfg.radius = args.getDouble("radius", 0.15);
    cfg.seed = seed;
    g = msc::gen::randomGeometricConnected(cfg, 0.9, 256).graph;
  } else if (type == "er") {
    msc::gen::ErdosRenyiConfig cfg;
    cfg.nodes = nodes;
    cfg.edgeProbability = args.getDouble("prob", 0.1);
    cfg.seed = seed;
    g = msc::gen::erdosRenyi(cfg);
  } else if (type == "ba") {
    msc::gen::BarabasiAlbertConfig cfg;
    cfg.nodes = nodes;
    cfg.attachEdges = static_cast<int>(args.getInt("attach", 2));
    cfg.seed = seed;
    g = msc::gen::barabasiAlbert(cfg);
  } else if (type == "ws") {
    msc::gen::WattsStrogatzConfig cfg;
    cfg.nodes = nodes;
    cfg.neighbors = static_cast<int>(args.getInt("neighbors", 2));
    cfg.rewireProbability = args.getDouble("prob", 0.1);
    cfg.seed = seed;
    g = msc::gen::wattsStrogatz(cfg);
  } else if (type == "gowalla") {
    msc::gen::GowallaConfig cfg;
    cfg.users = nodes == 100 ? 134 : nodes;  // default to the paper's size
    cfg.seed = seed;
    g = msc::gen::gowallaLike(cfg).graph;
  } else {
    std::cerr << "unknown --type " << type << '\n';
    return usage();
  }

  const std::string out = args.requireString("out");
  std::ofstream os(out);
  msc::graph::writeEdgeList(os, g);
  std::cout << "wrote " << g.nodeCount() << " nodes / " << g.edgeCount()
            << " edges to " << out << '\n';
  return 0;
}

int cmdPairs(const Args& args) {
  checkFlags(args, {"graph", "pt", "m", "seed", "out"});
  const auto g = loadGraph(args.requireString("graph"));
  const double pt = args.getDouble("pt", 0.14);
  const int m = static_cast<int>(args.getInt("m", 20));
  msc::util::Rng rng(static_cast<std::uint64_t>(args.getInt("seed", 1)));
  const auto dist = msc::graph::allPairsDistances(g, threadsArg(args));
  const double dt = msc::wireless::failureThresholdToDistance(pt);
  const auto pairs = msc::core::sampleImportantPairs(g, dist, m, dt, rng);

  std::ostream* os = &std::cout;
  std::ofstream file;
  if (args.has("out")) {
    file.open(args.requireString("out"));
    os = &file;
  }
  *os << "# important social pairs (u w), p_t = " << pt << "\n";
  for (const auto& p : pairs) *os << p.u << ' ' << p.w << '\n';
  if (args.has("out")) {
    std::cout << "wrote " << pairs.size() << " pairs to "
              << args.requireString("out") << '\n';
  }
  return 0;
}

int cmdSolve(const Args& args) {
  checkFlags(args,
             {"graph", "pairs", "pt", "k", "algo", "iters", "seed",
              "progress"});
  const auto inst = makeInstance(args);
  const ProgressTicker ticker(args.getBool("progress", false));
  const int k = static_cast<int>(args.getInt("k", 5));
  const std::string algo = args.getString("algo", "aa");
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  const int iters = static_cast<int>(args.getInt("iters", 500));
  const msc::core::SolveOptions options{
      .k = k, .threads = threadsArg(args), .seed = seed};
  const auto cands = msc::core::CandidateSet::allPairs(inst.graph().nodeCount());

  msc::core::ShortcutList placement;
  double value = 0.0;
  if (algo == "aa") {
    const auto aa = msc::core::sandwichApproximation(inst, cands, options);
    placement = aa.placement;
    value = aa.sigma;
    if (const auto ratio = aa.dataDependentRatio()) {
      std::cout << "data-dependent ratio sigma(F_nu)/nu(F_nu) = " << *ratio
                << '\n';
    }
  } else if (algo == "greedy") {
    msc::core::SigmaEvaluator sigma(inst);
    const auto res = msc::core::greedyMaximize(sigma, cands, options);
    placement = res.placement;
    value = res.value;
  } else if (algo == "ea") {
    msc::core::SigmaEvaluator sigma(inst);
    msc::core::EaConfig cfg;
    cfg.iterations = iters;
    const auto res = msc::core::evolutionaryAlgorithm(sigma, cands, options, cfg);
    placement = res.placement;
    value = res.value;
  } else if (algo == "aea") {
    msc::core::SigmaEvaluator sigma(inst);
    msc::core::AeaConfig cfg;
    cfg.iterations = iters;
    const auto res =
        msc::core::adaptiveEvolutionaryAlgorithm(sigma, cands, options, cfg);
    placement = res.placement;
    value = res.value;
  } else if (algo == "random") {
    msc::core::SigmaEvaluator sigma(inst);
    msc::core::RandomBaselineConfig cfg;
    cfg.repeats = iters;
    cfg.seed = seed;
    const auto res = msc::core::randomBaseline(sigma, cands, k, cfg);
    placement = res.placement;
    value = res.value;
  } else {
    std::cerr << "unknown --algo " << algo << '\n';
    return usage();
  }

  std::cout << "algorithm: " << algo << ", k = " << k << '\n';
  std::cout << "maintained: " << value << " / " << inst.pairCount() << '\n';
  std::cout << "placement:";
  std::string sep = " ";
  std::ostringstream spec;
  for (std::size_t i = 0; i < placement.size(); ++i) {
    if (i) spec << ',';
    spec << placement[i].a << '-' << placement[i].b;
  }
  std::cout << sep << (placement.empty() ? "(empty)" : spec.str()) << '\n';
  return 0;
}

// solve-mc: maximize the sampled multi-path reliability sigma-hat
// (objective "mc_reliability" in serve) instead of the shortest-path
// surrogate. Same candidate universe and output shape as `solve` so the
// two placements can be diffed directly.
int cmdSolveMc(const Args& args) {
  checkFlags(args,
             {"graph", "pairs", "pt", "k", "algo", "worlds", "seed",
              "progress"});
  const auto inst = makeInstance(args);
  const ProgressTicker ticker(args.getBool("progress", false));
  const int k = static_cast<int>(args.getInt("k", 5));
  const std::string algo = args.getString("algo", "greedy");
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  const long long worlds = args.getInt("worlds", 1024);
  if (worlds < 1 || worlds > (1 << 20)) {
    throw std::runtime_error("--worlds must be in [1, 1048576]");
  }
  const msc::core::SolveOptions options{
      .k = k, .threads = threadsArg(args), .seed = seed};
  const msc::mc::McOptions mcOptions{.worlds = static_cast<int>(worlds)};
  const auto cands =
      msc::core::CandidateSet::allPairs(inst.graph().nodeCount());

  msc::mc::McSolveResult res;
  if (algo == "greedy") {
    res = msc::mc::greedy(inst, cands, options, mcOptions);
  } else if (algo == "sandwich") {
    res = msc::mc::sandwich(inst, cands, options, mcOptions);
  } else {
    std::cerr << "unknown --algo " << algo << " (solve-mc supports "
                 "greedy|sandwich)\n";
    return usage();
  }

  std::cout << "algorithm: " << algo << " (objective mc_reliability), k = "
            << k << ", worlds = " << res.worlds << '\n';
  if (algo != "greedy") std::cout << "winner: " << res.winner << '\n';
  std::cout << "maintained (sigma-hat): " << res.sigmaHat << " / "
            << res.pairs << '\n';
  std::cout << "uncertain pairs (|R - (1-p_t)| <= half-width): "
            << res.uncertainPairs << '\n';
  std::ostringstream spec;
  for (std::size_t i = 0; i < res.placement.size(); ++i) {
    if (i) spec << ',';
    spec << res.placement[i].a << '-' << res.placement[i].b;
  }
  std::cout << "placement: " << (res.placement.empty() ? "(empty)" : spec.str())
            << '\n';
  return 0;
}

int cmdEval(const Args& args) {
  checkFlags(args, {"graph", "pairs", "pt", "placement"});
  const auto inst = makeInstance(args);
  const auto placement = parsePlacement(args.requireString("placement"));
  std::cout << "sigma = " << msc::core::sigmaValue(inst, placement) << " / "
            << inst.pairCount() << '\n';
  return 0;
}

int cmdRoute(const Args& args) {
  checkFlags(args, {"graph", "pairs", "pt", "placement"});
  const auto inst = makeInstance(args);
  const auto placement = parsePlacement(args.requireString("placement"));
  const auto routes = msc::core::routeAllPairs(inst, placement);
  msc::util::TableWriter table({"pair", "p_fail", "status", "path"});
  for (const auto& r : routes) {
    std::ostringstream pair;
    pair << r.pair.u << '-' << r.pair.w;
    std::ostringstream path;
    for (std::size_t i = 0; i < r.path.size(); ++i) {
      if (i) path << ' ';
      path << r.path[i];
    }
    table.addRow({pair.str(), msc::util::formatFixed(r.failure, 3),
                  r.meetsRequirement ? "ok" : "broken",
                  r.path.empty() ? "(unreachable)" : path.str()});
  }
  table.print(std::cout);
  return 0;
}

extern "C" void serveSignalHandler(int) {
  msc::serve::Server::requestShutdown();  // async-signal-safe atomic store
}

int cmdServe(const Args& args) {
  checkFlags(args, {"listen", "queue", "cache-mb", "oracle-rows-mb",
                    "metrics-listen", "slowreq-ms", "slowreq-dir"});
  msc::serve::ServerConfig config;
  config.engine.defaultThreads = threadsArg(args);
  // Flight-recorder knobs; flags win over MSC_SLOWREQ_MS / MSC_SLOWREQ_DIR.
  if (args.has("slowreq-ms")) {
    const double ms = args.getDouble("slowreq-ms", 0.0);
    if (ms < 0) throw std::runtime_error("--slowreq-ms must be >= 0");
    msc::obs::setSlowRequestThresholdMs(ms);
  }
  if (args.has("slowreq-dir")) {
    msc::obs::setSlowRequestDir(args.requireString("slowreq-dir"));
  }
  if (args.has("cache-mb")) {
    const long long mb = args.getInt("cache-mb", 256);
    if (mb < 0) throw std::runtime_error("--cache-mb must be >= 0");
    config.engine.cacheBytes = static_cast<std::size_t>(mb) << 20;
  }
  // Flag wins over the MSC_ORACLE_ROWS_MB default baked into EngineConfig.
  if (args.has("oracle-rows-mb")) {
    const long long mb = args.getInt("oracle-rows-mb", 0);
    if (mb < 0) throw std::runtime_error("--oracle-rows-mb must be >= 0");
    config.engine.oracleRowBytes = static_cast<std::size_t>(mb) << 20;
  }
  const long long queue = args.getInt("queue", 64);
  if (queue < 1) throw std::runtime_error("--queue must be >= 1");
  config.queueLimit = static_cast<std::size_t>(queue);

  // No SA_RESTART: blocked reads return EINTR so the poll loops re-check
  // the shutdown flag promptly.
  struct sigaction sa {};
  sa.sa_handler = serveSignalHandler;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  msc::serve::Server server(config);
  if (args.has("metrics-listen")) {
    const long long port = args.getInt("metrics-listen", 0);
    if (port < 0 || port > 65535) {
      throw std::runtime_error("--metrics-listen must be in [0, 65535]");
    }
    const int bound = server.startMetricsHttp(static_cast<int>(port));
    std::cerr << "telemetry: http://127.0.0.1:" << bound
              << "/metrics (and /healthz)\n";
  }
  if (args.has("listen")) {
    return server.serveUnixSocket(args.requireString("listen"));
  }
  return server.serveFd(0, 1);
}

int cmdVersion() {
  std::cout << "msc_cli (msc-linkplace) 1.0.0\n"
            << "machine-readable schemas:\n"
            << "  msc.metrics.v1  solver metrics JSON (--metrics-out, "
               "MSC_METRICS_OUT)\n"
            << "  msc.trace.v1    timeline trace JSON/JSONL (--trace-out, "
               "MSC_TRACE_OUT)\n"
            << "  msc.bench.v1    bench harness out/BENCH_<name>.json\n"
            << "  msc.serve.v1    serve subcommand JSONL request/response\n"
            << "    field additions: load_graph accepts \"distance_mode\" "
               "(auto|dense|pair_centric)\n"
            << "    and echoes it; solve/eval report \"distance_mode\"; solve "
               "reports \"candidates\";\n"
            << "    stats exposes cache.oracles{dense,pair_centric,"
               "bytes_dense,bytes_pair_centric,\n"
            << "    mode_switches,dense_telemetry,pair_centric_telemetry};\n"
            << "    solve/eval responses carry usage.oracle{point_queries,"
               "row_queries,\n"
            << "    terminal_batches,row_builds,row_hits,rows_evicted,"
               "alt_queries,rows_evolved,\n"
            << "    rows_replayed,row_build_seconds,alt_settled_ratio{count,"
               "p50,p90,max}};\n"
            << "    solve accepts \"objective\" (sigma|mc_reliability) and "
               "\"worlds\" and echoes\n"
            << "    \"objective\"; mc_reliability responses (algo "
               "greedy|sandwich) carry\n"
            << "    worlds/uncertain_pairs (and winner for sandwich), with "
               "value = sigma-hat,\n"
            << "    the sampled multi-path maintained count (CLI: solve-mc; "
               "obs: mc.worlds\n"
            << "    counter, mc.frontier_seconds histogram);\n"
            << "    metrics/GET /metrics export msc_serve_oracle_bytes{mode}, "
               "msc_serve_oracle_rows{mode},\n"
            << "    msc_serve_oracle_queries_total{mode,kind}, "
               "msc_serve_oracle_row_builds_total{mode},\n"
            << "    msc_serve_oracle_row_hits_total{mode}, "
               "msc_serve_oracle_row_evictions_total{mode},\n"
            << "    msc_serve_oracle_mode_switches_total\n"
            << "    knobs: MSC_ORACLE_ROWS_MB / serve --oracle-rows-mb "
               "(bounded oracle row cache,\n"
            << "    bit-identical results); distance_mode \"auto\" "
               "re-validates the backend from the\n"
            << "    measured query mix and logs serve.oracle_mode_decision "
               "events;\n"
            << "    live introspection (docs/ALGORITHMS.md sec. 18): any "
               "request accepts\n"
            << "    \"deadline_seconds\" (> 0) and \"progress\":{\"every_ms\":"
               "N}; progress emits\n"
            << "    {\"event\":\"progress\",\"id\",\"seq\",\"solver\",\"stage\","
               "\"round\",\"total_rounds\",\n"
            << "    \"value\",\"gain_evals\",\"eta_seconds\","
               "\"rounds_per_second\",\"extras\"} lines\n"
            << "    before the final reply; new cmd \"cancel\" "
               "{\"target\": ID} stops a queued or\n"
            << "    executing request at its next round boundary; statuses "
               "\"cancelled\" and\n"
            << "    \"deadline_exceeded\" mark anytime results (best-so-far "
               "placement/value, plus\n"
            << "    certified_upper_bound/bound_gap for interrupted sandwich "
               "solves); usage gains\n"
            << "    deadline_seconds/cancelled/progress{every_ms,snapshots,"
               "events}; stats gains\n"
            << "    progress{snapshots,events,last_rounds_per_second} and "
               "cancellations{client,deadline};\n"
            << "    metrics/GET /metrics export msc_serve_cancellations_total"
               "{reason}, msc_serve_requests_inflight{phase},\n"
            << "    msc_progress_snapshots_total, msc_progress_events_total, "
               "msc_solver_rounds_per_second\n"
            << "  prometheus-text-0.0.4  metrics exposition (--metrics-prom, "
               "serve `metrics` cmd, GET /metrics)\n";
  return 0;
}

int dispatch(const std::string& cmd, const Args& args) {
  if (cmd == "gen") return cmdGen(args);
  if (cmd == "pairs") return cmdPairs(args);
  if (cmd == "solve") return cmdSolve(args);
  if (cmd == "solve-mc") return cmdSolveMc(args);
  if (cmd == "eval") return cmdEval(args);
  if (cmd == "route") return cmdRoute(args);
  if (cmd == "serve") return cmdServe(args);
  std::cerr << "unknown command: " << cmd << '\n';
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "version" || cmd == "--version") return cmdVersion();
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    usage();
    return 0;
  }
  try {
    const Args args(argc - 2, argv + 2);
    // Force-enable collection before any work (instance loading already
    // runs Dijkstra/APSP) so the exports see the whole command.
    if (args.has("metrics-out") || args.has("metrics-prom")) {
      msc::obs::setEnabled(true);
    }
    if (args.has("trace-out")) msc::obs::trace::setEnabled(true);
    msc::obs::trace::setCurrentThreadName("main");

    const int rc = dispatch(cmd, args);

    if (rc == 0 && args.has("metrics-out")) {
      const std::string path = args.requireString("metrics-out");
      msc::obs::writeJsonFile(path, msc::obs::Registry::global());
      std::cout << "wrote metrics to " << path << '\n';
    }
    if (rc == 0 && args.has("metrics-prom")) {
      const std::string path = args.requireString("metrics-prom");
      msc::obs::writePromFile(path, msc::obs::Registry::global());
      std::cout << "wrote prometheus metrics to " << path << '\n';
    }
    if (rc == 0 && args.has("trace-out")) {
      const std::string path = args.requireString("trace-out");
      msc::obs::trace::writeFile(path, msc::obs::trace::snapshot());
      std::cout << "wrote trace to " << path << '\n';
    }
    // With MSC_METRICS=1 / MSC_TRACE=1 (and no explicit export) append the
    // human-readable footers, mirroring the bench binaries.
    if (rc == 0 && !args.has("metrics-out")) {
      msc::eval::printMetricsFooter(std::cout);
    }
    if (rc == 0 && !args.has("trace-out")) {
      msc::eval::printTraceFooter(std::cout);
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
