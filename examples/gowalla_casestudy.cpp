// Location-based social network case study (paper §VII-A1): a synthetic
// evening-in-Austin check-in network (the Gowalla stand-in). Users cluster
// at venues; the MSC operator must keep friend pairs connected across
// venues using a handful of reliable backhaul links.
//
// Runs every algorithm in the library on the same instance, prints a
// comparison table, and exports a DOT rendering of the AA placement.
//
// Build & run:  ./examples/gowalla_casestudy
#include <fstream>
#include <iostream>

#include "core/aea.h"
#include "core/candidates.h"
#include "core/ea.h"
#include "core/random_baseline.h"
#include "core/sandwich.h"
#include "core/sigma.h"
#include "eval/experiment.h"
#include "graph/graph_io.h"
#include "util/table.h"

int main() {
  using namespace msc;

  eval::GowallaSetup setup;
  setup.pairs = 50;
  setup.failureThreshold = 0.27;
  const auto spatial = eval::makeGowallaInstance(setup);
  const auto& inst = spatial.instance;

  std::cout << "check-in network: " << inst.graph().nodeCount() << " users, "
            << inst.graph().edgeCount() << " proximity links, "
            << inst.pairCount() << " friend pairs to maintain (p_fail <= "
            << setup.failureThreshold << ")\n\n";

  const int k = 5;
  const auto cands = core::CandidateSet::allPairs(inst.graph().nodeCount());

  util::TableWriter table({"algorithm", "maintained", "of", "notes"});

  const auto aa = core::sandwichApproximation(inst, cands, {.k = k});
  table.addRow({"AA (sandwich)", util::formatFixed(aa.sigma, 0),
                std::to_string(inst.pairCount()),
                "winner: greedy-on-" + aa.winner});

  core::SigmaEvaluator sigma(inst);
  core::EaConfig eaCfg;
  eaCfg.iterations = 500;
  eaCfg.seed = 3;
  const auto ea = core::evolutionaryAlgorithm(sigma, cands, {.k = k, .seed = eaCfg.seed}, eaCfg);
  table.addRow({"EA (GSEMO)", util::formatFixed(ea.value, 0),
                std::to_string(inst.pairCount()), "r=500"});

  core::AeaConfig aeaCfg;
  aeaCfg.iterations = 500;
  aeaCfg.seed = 3;
  const auto aea =
      core::adaptiveEvolutionaryAlgorithm(sigma, cands, {.k = k, .seed = aeaCfg.seed}, aeaCfg);
  table.addRow({"AEA", util::formatFixed(aea.value, 0),
                std::to_string(inst.pairCount()), "r=500, l=10, delta=0.05"});

  core::RandomBaselineConfig rndCfg;
  rndCfg.repeats = 500;
  rndCfg.seed = 3;
  const auto rnd = core::randomBaseline(sigma, cands, k, rndCfg);
  table.addRow({"Random (best of 500)", util::formatFixed(rnd.value, 0),
                std::to_string(inst.pairCount()),
                "mean " + util::formatFixed(rnd.meanValue, 1)});

  table.print(std::cout);

  // Render the AA placement: venues show up as blobs, shortcuts as red
  // backbone links between them.
  graph::DotStyle style;
  std::vector<std::pair<double, double>> pos;
  for (const auto& p : spatial.positions) {
    pos.push_back({p.x / 250.0, p.y / 250.0});  // meters -> drawing units
  }
  style.positions = pos;
  for (const auto& f : aa.placement) style.shortcuts.push_back({f.a, f.b});
  for (const auto& p : inst.pairs()) style.socialPairs.push_back({p.u, p.w});
  std::ofstream dot("gowalla_placement.dot");
  graph::writeDot(dot, inst.graph(), style);
  std::cout << "\nAA placement written to gowalla_placement.dot "
               "(render: neato -n2 -Tpng -o out.png gowalla_placement.dot)\n";
  std::cout << "\nlesson: one backhaul link between two busy venues "
               "maintains every friend pair spanning them — the clustered "
               "structure the paper highlights in §VII-D.\n";
  return 0;
}
