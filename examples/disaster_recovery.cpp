// Disaster-recovery scenario (paper §I + §VI): rescue teams sweep a
// disaster area; the network topology changes as they move, and a control
// center must stay connected to team leads across the whole operation.
// One set of shortcut links (satellite terminals) must be chosen up front
// to serve ALL predicted topologies — the dynamic MSC problem.
//
// Build & run:  ./examples/disaster_recovery
#include <iostream>

#include "core/aea.h"
#include "core/candidates.h"
#include "core/dynamic.h"
#include "gen/dynamic_series.h"
#include "gen/mobility.h"
#include "graph/apsp.h"
#include "util/rng.h"
#include "wireless/link_model.h"

int main() {
  using namespace msc;

  // Five rescue teams of 10 move through a 2.5 km area; positions are
  // sampled every 2 minutes for 12 instants (the "predicted topologies").
  gen::MobilityConfig mob;
  mob.groups = 5;
  mob.nodesPerGroup = 10;
  mob.areaMeters = 2500.0;
  mob.timeInstances = 12;
  mob.sampleIntervalSeconds = 120.0;
  mob.seed = 7;
  const auto trace = gen::referencePointGroupMobility(mob);

  gen::DynamicSeriesConfig radio;
  radio.radioRangeMeters = 350.0;
  radio.failure = wireless::DistanceProportionalFailure(0.001, 0.95);
  auto series = gen::buildDynamicSeries(trace, radio);

  // Control center = node 0; team leads = first member of each team; also
  // keep the leads connected to each other (coordination pairs).
  const double pt = 0.15;
  const double dt = wireless::failureThresholdToDistance(pt);
  std::vector<core::SocialPair> wanted;
  for (int g = 1; g < mob.groups; ++g) {
    wanted.push_back({0, g * mob.nodesPerGroup});
  }
  for (int g1 = 1; g1 < mob.groups; ++g1) {
    for (int g2 = g1 + 1; g2 < mob.groups; ++g2) {
      wanted.push_back({g1 * mob.nodesPerGroup, g2 * mob.nodesPerGroup});
    }
  }

  std::vector<core::Instance> instances;
  for (auto& net : series) {
    instances.emplace_back(std::move(net.graph), wanted, dt);
  }
  const int n = mob.groups * mob.nodesPerGroup;
  const auto cands = core::CandidateSet::allPairs(n);

  core::DynamicProblem problem(std::move(instances), cands);
  std::cout << "dynamic problem: T = " << problem.instanceCount()
            << " topologies, " << wanted.size()
            << " critical pairs each, p_fail <= " << pt << "\n";
  std::cout << "without shortcuts: " << problem.sigmaFn().value({}) << " / "
            << problem.totalPairCount()
            << " pair-instances maintained\n\n";

  const int k = 4;  // four satellite terminals

  // Sandwich approximation on the summed objective (§VI-2).
  const auto aa = problem.sandwich(cands, {.k = k});
  std::cout << "AA  (k=" << k << "): " << aa.sigma << " / "
            << problem.totalPairCount() << " pair-instances; shortcuts:";
  for (const auto& f : aa.placement) std::cout << " (" << f.a << "-" << f.b << ")";
  std::cout << '\n';

  // AEA refines further (§VI-3).
  core::AeaConfig aeaCfg;
  aeaCfg.iterations = 150;
  aeaCfg.seed = 1;
  const auto aea =
      core::adaptiveEvolutionaryAlgorithm(problem.sigma(), cands, {.k = k, .seed = aeaCfg.seed}, aeaCfg);
  std::cout << "AEA (k=" << k << ", r=" << aeaCfg.iterations
            << "): " << aea.value << "\n\n";

  // Where does the chosen placement fall short over time?
  const auto& best = (aea.value >= aa.sigma) ? aea.placement : aa.placement;
  const auto perTime = problem.perInstanceSigma(best);
  std::cout << "maintained pairs per time instant (best placement):\n  t:";
  for (std::size_t t = 0; t < perTime.size(); ++t) {
    std::cout << ' ' << perTime[t];
  }
  std::cout << "  (max " << wanted.size() << " each)\n";
  std::cout << "\nlesson: a single up-front placement keeps most critical "
               "pairs connected across every predicted topology, because "
               "the summed objective stays (almost) submodular-friendly.\n";
  return 0;
}
