// Ablation — MSC-CN structure (paper §IV): on common-node instances,
// (a) the coverage greedy empirically sits far above its (1 - 1/e) floor
//     (measured against exact search over the hub-incident space), and
// (b) restricting candidates to hub-incident shortcuts loses nothing
//     (Theorem 1's "an optimal solution is incident to u"), while speeding
//     the search up by a factor n/2.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/candidates.h"
#include "core/common_node.h"
#include "core/exact.h"
#include "core/instance.h"
#include "core/sigma.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "gen/random_geometric.h"
#include "graph/apsp.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"
#include "wireless/link_model.h"

int main() {
  using namespace msc;
  eval::printHeader(std::cout, "Ablation: MSC-CN coverage greedy vs exact",
                    "paper Theorems 1/4/5 (§IV)");
  const int trials =
      util::scaledIters(static_cast<int>(util::envInt("MSC_TRIALS", 8)));
  std::cout << "RG n=16, common node = 0, m = 6, k = 3; " << trials
            << " seeded instances (small n keeps the unrestricted exact\n"
               "search tractable)\n\n";

  util::TableWriter table({"seed", "greedy", "exact(hub)", "exact(all)",
                           "ratio", "floor (1-1/e)"});
  util::RunningStats ratios;
  int hubOptimalMatchesAll = 0;
  int rows = 0;

  for (int trial = 0; trial < trials; ++trial) {
    const auto seed = static_cast<std::uint64_t>(trial + 1);
    gen::RandomGeometricConfig cfg;
    cfg.nodes = 16;
    cfg.radius = 0.4;
    cfg.failure = wireless::DistanceProportionalFailure(0.5, 0.95);
    cfg.seed = seed;
    auto net = gen::randomGeometricConnected(cfg, 0.9, 64);

    const double dt = wireless::failureThresholdToDistance(0.12);
    const auto dist = graph::allPairsDistances(net.graph);
    util::Rng rng(seed ^ 0xabULL);
    std::vector<core::SocialPair> pairs;
    try {
      pairs = core::sampleCommonNodePairs(net.graph, dist, 0, 6, dt, rng);
    } catch (const std::runtime_error&) {
      continue;  // this seed has too few far nodes; skip
    }
    core::Instance inst(std::move(net.graph), std::move(pairs), dt);
    const int k = 3;

    const auto greedy = core::solveCommonNodeCoverage(inst, 0, k);

    core::SigmaEvaluator sigma(inst);
    const auto hubCands = core::CandidateSet::incidentTo(16, 0);
    const auto exactHub = core::exactOptimum(sigma, hubCands, k);

    // Exact over ALL candidates: C(120,3) ~ 2.8e5 placements, tractable
    // at this size; the ceiling prune stops early when all pairs are met.
    core::ExactConfig allCfg;
    allCfg.ceiling = static_cast<double>(inst.pairCount());
    const auto allCands = core::CandidateSet::allPairs(16);
    const auto exactAll = core::exactOptimum(sigma, allCands, k, allCfg);

    const double ratio =
        exactHub.value > 0.0 ? greedy.sigma / exactHub.value : 1.0;
    ratios.push(ratio);
    if (exactAll.value <= exactHub.value + 1e-9) ++hubOptimalMatchesAll;
    ++rows;

    table.addRow({std::to_string(trial + 1),
                  util::formatFixed(greedy.sigma, 0),
                  util::formatFixed(exactHub.value, 0),
                  util::formatFixed(exactAll.value, 0),
                  util::formatFixed(ratio, 3),
                  util::formatFixed(1.0 - std::exp(-1.0), 3)});
  }
  table.print(std::cout);
  std::cout << "\nmean greedy/exact ratio: " << util::formatFixed(ratios.mean(), 3)
            << " (guaranteed floor 0.632); hub-incident optimum matched the "
               "unrestricted optimum in "
            << hubOptimalMatchesAll << "/" << rows
            << " instances (Theorem 1)\n";
  return 0;
}
