// Serve-path throughput: requests/second through serve::Engine, cold vs
// warm instance cache. "Cold" clears the cache before every request batch,
// so each solve pays graph hashing + the n-source APSP build; "warm"
// pre-loads the instance once so every solve reuses the memoized matrix
// (apsp_cache:"hit"). The gap between the two medians is the cache's whole
// value proposition, and the per-run counter snapshots in the BENCH json
// (serve.cache.apsp_hits / apsp_misses) prove which path each case took —
// tools/bench_diff.py keeps it from regressing.
#include <cstddef>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "graph/graph_io.h"
#include "harness.h"
#include "serve/json.h"
#include "serve/server.h"
#include "util/env.h"

namespace {

std::string graphText(const msc::core::Instance& inst) {
  std::ostringstream os;
  msc::graph::writeEdgeList(os, inst.graph());
  return os.str();
}

std::string pairsText(const msc::core::Instance& inst) {
  std::ostringstream os;
  for (const auto& p : inst.pairs()) os << p.u << ' ' << p.w << '\n';
  return os.str();
}

std::string escape(const std::string& raw) {
  std::string out;
  for (const char c : raw) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void expectOk(const std::string& response) {
  if (response.find("\"status\":\"ok\"") == std::string::npos) {
    throw std::runtime_error("serve request failed: " + response);
  }
}

/// Pulls usage.phases durations out of stored response lines (parsed after
/// the timed runs — JSON parsing must not pollute the measurement). The
/// oracle row-build attribution (usage.oracle.row_build_seconds) rides
/// along as pseudo-phase "oracle_row_build" so bench_diff.py's per-phase
/// gate covers the lazy-backend Dijkstra cost too.
std::map<std::string, std::vector<double>> collectPhases(
    const std::vector<std::string>& responses) {
  std::map<std::string, std::vector<double>> phases;
  for (const std::string& line : responses) {
    const msc::serve::json::Value doc = msc::serve::json::parse(line);
    const msc::serve::json::Value* usage = doc.find("usage");
    if (usage == nullptr) continue;
    const msc::serve::json::Value* phaseObj = usage->find("phases");
    if (phaseObj == nullptr || !phaseObj->isObject()) continue;
    for (const auto& [name, value] : phaseObj->asObject()) {
      if (value.isNumber()) phases[name].push_back(value.asNumber());
    }
    const msc::serve::json::Value* oracle = usage->find("oracle");
    if (oracle == nullptr) continue;
    const msc::serve::json::Value* rowBuild =
        oracle->find("row_build_seconds");
    if (rowBuild != nullptr && rowBuild->isNumber() &&
        rowBuild->asNumber() > 0.0) {
      phases["oracle_row_build"].push_back(rowBuild->asNumber());
    }
  }
  return phases;
}

}  // namespace

int main() {
  using namespace msc;

  eval::RgSetup setup;
  setup.nodes = static_cast<int>(util::envInt("MSC_SERVE_BENCH_NODES", 80));
  setup.pairs = 24;
  const auto spatial = eval::makeRgInstance(setup);
  const std::string loadGraphReq =
      "{\"cmd\":\"load_graph\",\"as\":\"g\",\"text\":\"" +
      escape(graphText(spatial.instance)) + "\"}";
  const std::string loadPairsReq =
      "{\"cmd\":\"load_pairs\",\"as\":\"p\",\"text\":\"" +
      escape(pairsText(spatial.instance)) + "\"}";
  const std::string solveReq =
      "{\"cmd\":\"solve\",\"graph\":\"g\",\"pairs\":\"p\",\"p_t\":0.14,"
      "\"algo\":\"greedy\",\"k\":4,\"threads\":1,\"seed\":1}";
  const int requestsPerRun =
      static_cast<int>(util::envInt("MSC_SERVE_BENCH_REQUESTS", 8));

  serve::Engine engine;
  expectOk(engine.handleLine(loadGraphReq));
  expectOk(engine.handleLine(loadPairsReq));

  bench::Harness h("serve_throughput");

  // Solve responses are kept (push_back only, parsed after the runs) so
  // the usage.phases attribution can be aggregated into the BENCH json —
  // the per-phase p99 series bench_diff.py gates (apsp separately from
  // end-to-end).
  std::vector<std::string> solveResponses;
  solveResponses.reserve(256);

  // Every request batch re-loads the instance from scratch: each solve is
  // an APSP compute (serve.cache.apsp_misses == requestsPerRun per run).
  const auto& cold = h.run("solve_cold_cache", [&] {
    for (int i = 0; i < requestsPerRun; ++i) {
      engine.cache().clear();
      expectOk(engine.handleLine(loadGraphReq));
      expectOk(engine.handleLine(loadPairsReq));
      solveResponses.push_back(engine.handleLine(solveReq));
      expectOk(solveResponses.back());
    }
  });
  for (const auto& [phase, samples] : collectPhases(solveResponses)) {
    h.addPhaseSamples(phase, samples);
  }
  solveResponses.clear();

  // Instance stays loaded: every solve reuses the memoized matrix
  // (serve.cache.apsp_hits == requestsPerRun per run).
  expectOk(engine.handleLine(loadGraphReq));
  expectOk(engine.handleLine(loadPairsReq));
  expectOk(engine.handleLine(solveReq));  // memoize APSP before timing
  const auto& warm = h.run("solve_warm_cache", [&] {
    for (int i = 0; i < requestsPerRun; ++i) {
      solveResponses.push_back(engine.handleLine(solveReq));
      expectOk(solveResponses.back());
    }
  });
  for (const auto& [phase, samples] : collectPhases(solveResponses)) {
    h.addPhaseSamples(phase, samples);
  }
  solveResponses.clear();

  // Warm solve with progress streaming enabled (docs/ALGORITHMS.md §18):
  // every round boundary renders and delivers an event line. The delta
  // against solve_warm_cache is the whole cost of live introspection, and
  // bench_diff.py gates it like any other case.
  const auto progressReq = serve::parseRequest(
      "{\"cmd\":\"solve\",\"graph\":\"g\",\"pairs\":\"p\",\"p_t\":0.14,"
      "\"algo\":\"greedy\",\"k\":4,\"threads\":1,\"seed\":1,"
      "\"progress\":{\"every_ms\":0}}");
  std::size_t progressEvents = 0;
  const std::function<void(const std::string&)> countEvents =
      [&progressEvents](const std::string&) { ++progressEvents; };
  const auto& withProgress = h.run("solve_with_progress", [&] {
    for (int i = 0; i < requestsPerRun; ++i) {
      solveResponses.push_back(engine.handle(progressReq, 0.0, &countEvents));
      expectOk(solveResponses.back());
    }
  });
  if (progressEvents == 0) {
    std::cerr << "progress case emitted no events\n";
    return 1;
  }
  for (const auto& [phase, samples] : collectPhases(solveResponses)) {
    h.addPhaseSamples(phase, samples);
  }
  solveResponses.clear();

  // Cold pair-centric case: every solve pays the landmark + pair-node row
  // Dijkstras, so usage.oracle.row_build_seconds is nonzero — this feeds
  // the "oracle_row_build" phase series the regression gate watches.
  const std::string loadGraphPcReq =
      "{\"cmd\":\"load_graph\",\"as\":\"g\",\"distance_mode\":"
      "\"pair_centric\",\"text\":\"" +
      escape(graphText(spatial.instance)) + "\"}";
  const auto& pairCentric = h.run("solve_pair_centric_cold", [&] {
    for (int i = 0; i < requestsPerRun; ++i) {
      engine.cache().clear();
      expectOk(engine.handleLine(loadGraphPcReq));
      expectOk(engine.handleLine(loadPairsReq));
      solveResponses.push_back(engine.handleLine(solveReq));
      expectOk(solveResponses.back());
    }
  });
  for (const auto& [phase, samples] : collectPhases(solveResponses)) {
    h.addPhaseSamples(phase, samples);
  }

  const auto reqPerSec = [requestsPerRun](double seconds) {
    return seconds > 0.0 ? requestsPerRun / seconds : 0.0;
  };
  std::cout << "serve throughput (RG n=" << setup.nodes << ", greedy k=4, "
            << requestsPerRun << " req/run)\n"
            << "  cold cache: median " << cold.median << " s  ("
            << reqPerSec(cold.median) << " req/s)\n"
            << "  warm cache: median " << warm.median << " s  ("
            << reqPerSec(warm.median) << " req/s)\n"
            << "  warm + progress: median " << withProgress.median << " s  ("
            << reqPerSec(withProgress.median) << " req/s, "
            << progressEvents << " events)\n"
            << "  pair-centric cold: median " << pairCentric.median << " s  ("
            << reqPerSec(pairCentric.median) << " req/s)\n";

  const auto stats = engine.cache().stats();
  std::cout << "  cache: apsp_computes=" << stats.apspComputes
            << " apsp_hits=" << stats.apspHits
            << " evictions=" << stats.evictions << '\n';
  if (stats.apspHits == 0) {
    std::cerr << "warm case never hit the APSP cache\n";
    return 1;
  }
  if (warm.median >= cold.median) {
    std::cerr << "warning: warm median not below cold median (noisy host?)\n";
  }
  std::cout << "bench json: " << h.writeJson() << '\n';
  return 0;
}
