// Large-instance smoke test for the pair-centric distance backend: proves
// the O(n^2) wall is actually gone. Builds an n = 5*10^4 random-geometric
// network (the dense matrix alone would be n^2 * 8 B = 20 GB), solves
// greedy k = 5 over the pair-node candidate universe, and fails the
// process if peak RSS exceeds the budget — so a regression that sneaks a
// matrix materialization back onto the solve path turns CI red instead of
// silently OOMing real workloads.
//
// Knobs (env): MSC_SMOKE_NODES (default 50000), MSC_SMOKE_PAIRS (500),
// MSC_SMOKE_RSS_MB (2048).
#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/candidates.h"
#include "core/greedy.h"
#include "core/instance.h"
#include "core/sigma.h"
#include "gen/random_geometric.h"
#include "graph/distance_oracle.h"
#include "util/env.h"
#include "util/rng.h"

namespace {

long peakRssMb() {
  struct rusage ru {};
  ::getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss / 1024;  // Linux reports KiB
}

}  // namespace

int main() {
  const int nodes =
      static_cast<int>(msc::util::envInt("MSC_SMOKE_NODES", 50000));
  const int pairCount =
      static_cast<int>(msc::util::envInt("MSC_SMOKE_PAIRS", 500));
  const long rssBudgetMb = msc::util::envInt("MSC_SMOKE_RSS_MB", 2048);

  msc::gen::RandomGeometricConfig cfg;
  cfg.nodes = nodes;
  // Degree ~ n * pi * r^2: r = 0.01 keeps ~15 neighbors at n = 5*10^4 —
  // connected w.h.p. but sparse enough that one Dijkstra row is cheap.
  cfg.radius = 0.01;
  cfg.seed = 1;
  auto net = msc::gen::randomGeometric(cfg);
  std::printf("graph: n=%d m=%zu peak_rss=%ld MB\n", net.graph.nodeCount(),
              net.graph.edgeCount(), peakRssMb());

  msc::util::Rng rng(7);
  std::vector<msc::core::SocialPair> pairs;
  while (static_cast<int>(pairs.size()) < pairCount) {
    const auto u = static_cast<msc::graph::NodeId>(
        rng.below(static_cast<std::uint64_t>(nodes)));
    const auto w = static_cast<msc::graph::NodeId>(
        rng.below(static_cast<std::uint64_t>(nodes)));
    if (u == w) continue;
    pairs.push_back({std::min(u, w), std::max(u, w)});
  }

  const auto graph =
      std::make_shared<const msc::graph::Graph>(std::move(net.graph));
  const auto oracle = msc::graph::makeDistanceOracle(
      graph, msc::graph::DistanceMode::PairCentric, /*landmarks=*/8,
      /*threads=*/0);

  // Threshold at the 25th percentile of the finite pair distances: ~75%
  // of the pairs start unsatisfied, so greedy has real gains to find.
  std::vector<msc::graph::NodeId> endpoints;
  for (const auto& p : pairs) {
    endpoints.push_back(p.u);
    endpoints.push_back(p.w);
  }
  oracle->prefetchRows(endpoints, /*threads=*/0);
  std::vector<double> finite;
  for (const auto& p : pairs) {
    const double d = oracle->distance(p.u, p.w);
    if (d != msc::graph::kInfDist) finite.push_back(d);
  }
  std::sort(finite.begin(), finite.end());
  const double dt = finite.empty() ? 1.0 : finite[finite.size() / 4];

  const msc::core::Instance inst(graph, oracle, std::move(pairs), dt,
                                 /*threads=*/0);
  std::printf("oracle: mode=%s resident=%zu MB d_t=%.4f peak_rss=%ld MB\n",
              inst.distanceOracle().mode(),
              inst.distanceOracle().residentBytes() >> 20, dt, peakRssMb());

  // The scalable candidate universe: shortcuts between pair endpoints
  // (the serve path does the same on this backend) — not all n*(n-1)/2.
  const auto& nodesOfPairs = inst.pairNodes();
  msc::core::ShortcutList list;
  list.reserve(nodesOfPairs.size() * (nodesOfPairs.size() - 1) / 2);
  for (std::size_t i = 0; i < nodesOfPairs.size(); ++i) {
    for (std::size_t j = i + 1; j < nodesOfPairs.size(); ++j) {
      list.push_back(msc::core::Shortcut::make(nodesOfPairs[i],
                                               nodesOfPairs[j]));
    }
  }
  const msc::core::CandidateSet cands(std::move(list));

  msc::core::SigmaEvaluator sigma(inst);
  const double base = sigma.value({});
  const auto result = msc::core::greedyMaximize(
      sigma, cands, msc::core::SolveOptions{.k = 5, .threads = 0});
  const long rss = peakRssMb();
  std::printf(
      "greedy: k=5 candidates=%zu sigma %.0f -> %.0f peak_rss=%ld MB "
      "(budget %ld MB)\n",
      cands.size(), base, result.value, rss, rssBudgetMb);

  bool ok = true;
  if (result.value < base) {
    std::printf("FAIL: greedy decreased sigma\n");
    ok = false;
  }
  if (rss > rssBudgetMb) {
    std::printf("FAIL: peak RSS %ld MB exceeds budget %ld MB — did the "
                "O(n^2) matrix sneak back onto the solve path?\n",
                rss, rssBudgetMb);
    ok = false;
  }
  std::printf(ok ? "PASS\n" : "FAIL\n");
  return ok ? 0 : 1;
}
