// Ablation — robust (max-min) vs average (sum) placement over scenario
// sets (DESIGN.md §4 extension). Scenarios are alternative mobility
// futures: same start, different RPGM seeds. Compares, on the worst and
// average scenario, the placements produced by (a) sum-greedy (§VI's
// objective), (b) plain greedy on the min objective (documented plateau
// failure), and (c) robustSaturate (truncated-sum SATURATE scheme).
#include <iostream>
#include <vector>

#include "core/candidates.h"
#include "core/dynamic.h"
#include "core/greedy.h"
#include "core/robust.h"
#include "core/sigma.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "util/env.h"
#include "util/table.h"

int main() {
  using namespace msc;
  eval::printHeader(std::cout, "Ablation: robust (max-min) vs sum placement",
                    "DESIGN.md ablation index");
  const int scenarios = 4;
  const int k = static_cast<int>(util::envInt("MSC_K", 8));
  std::cout << scenarios << " alternative mobility futures (RPGM seeds), "
            << "n=50, m=30, k=" << k << "\n\n";

  // One instance per scenario: a single snapshot from each future.
  std::vector<core::Instance> instances;
  for (int s = 0; s < scenarios; ++s) {
    eval::DynamicSetup setup;
    setup.timeInstances = 1;
    setup.seed = 100 + static_cast<std::uint64_t>(s);
    auto series = eval::makeDynamicInstances(setup);
    instances.push_back(std::move(series.front()));
  }
  const auto cands = core::CandidateSet::allPairs(50);

  std::vector<std::unique_ptr<core::SigmaEvaluator>> evals;
  std::vector<core::IncrementalEvaluator*> kids;
  std::vector<const core::SetFunction*> fns;
  for (const auto& inst : instances) {
    evals.push_back(std::make_unique<core::SigmaEvaluator>(inst));
    kids.push_back(evals.back().get());
    fns.push_back(evals.back().get());
  }
  core::MinEvaluator robust(kids, fns);
  core::SumEvaluator sum(kids, fns, "sum");

  auto evaluate = [&](const core::ShortcutList& placement) {
    double worst = robust.value(placement);
    double total = sum.value(placement);
    return std::pair<double, double>(worst,
                                     total / static_cast<double>(scenarios));
  };

  util::TableWriter table({"strategy", "worst scenario", "avg scenario",
                           "|F|"});

  const auto sumGreedy = core::greedyMaximize(sum, cands, {.k = k});
  {
    const auto [worst, avg] = evaluate(sumGreedy.placement);
    table.addRow({"sum greedy (§VI objective)", util::formatFixed(worst, 1),
                  util::formatFixed(avg, 1),
                  std::to_string(sumGreedy.placement.size())});
  }

  const auto minGreedy = core::greedyMaximize(robust, cands, {.k = k});
  {
    const auto [worst, avg] = evaluate(minGreedy.placement);
    table.addRow({"plain greedy on min (plateau)",
                  util::formatFixed(worst, 1), util::formatFixed(avg, 1),
                  std::to_string(minGreedy.placement.size())});
  }

  double maxTarget = 1e9;
  for (const auto& inst : instances) {
    maxTarget = std::min(maxTarget, static_cast<double>(inst.pairCount()));
  }
  const auto saturate = core::robustSaturate(kids, fns, cands, {.k = k}, maxTarget);
  {
    const auto [worst, avg] = evaluate(saturate.placement);
    table.addRow({"robustSaturate (truncated sum)",
                  util::formatFixed(worst, 1), util::formatFixed(avg, 1),
                  std::to_string(saturate.placement.size())});
  }

  table.print(std::cout);
  std::cout << "\nreading: sum-greedy maximizes the average but can abandon "
               "an unlucky scenario; plain min-greedy underperforms (and "
               "stalls at zero outright when scenarios conflict — see "
               "tests/test_robust.cpp); robustSaturate lifts the worst "
               "scenario at a modest average cost.\n";
  return 0;
}
