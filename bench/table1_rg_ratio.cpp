// Table I — data-dependent approximation ratio sigma(F_nu)/nu(F_nu) on the
// Random Geometric graph (paper §VII-B; n = 100, m = 17).
//
// Rows: shortcut budget k; columns: failure threshold p_t. The paper reports
// ratios mostly above 0.1 (max ~0.43) that DECREASE as k grows; the same
// shape should appear here (absolute values depend on the sampled instance).
#include <iostream>
#include <vector>

#include "core/candidates.h"
#include "core/sandwich.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace msc;

  eval::printHeader(std::cout, "Table I: sigma(F_nu)/nu(F_nu) on RG graph",
                    "ICDCS'19 Table I (n=100, m=17)");

  const std::vector<double> thresholds{0.04, 0.08, 0.11, 0.14, 0.18};
  const std::vector<int> budgets{2, 4, 6, 8, 10};
  const auto baseSeed = static_cast<std::uint64_t>(util::envInt("MSC_SEED", 1));
  const int trials =
      util::scaledIters(static_cast<int>(util::envInt("MSC_TRIALS", 5)));
  std::cout << "mean ratio over " << trials << " seeded instances per cell\n";

  std::vector<std::string> header{"k \\ p_t"};
  for (const double pt : thresholds) header.push_back(util::formatFixed(pt, 2));
  util::TableWriter table(header);

  // One instance per (threshold, trial): the pair set depends on p_t, and
  // averaging over trials smooths single-instance artifacts (a ratio of 0
  // just means the nu-greedy placement missed every pairing on that seed).
  std::vector<std::vector<eval::SpatialInstance>> instances(thresholds.size());
  for (std::size_t c = 0; c < thresholds.size(); ++c) {
    for (int trial = 0; trial < trials; ++trial) {
      eval::RgSetup setup;
      setup.nodes = 100;
      setup.pairs = 17;
      setup.failureThreshold = thresholds[c];
      setup.seed = baseSeed + static_cast<std::uint64_t>(trial);
      instances[c].push_back(eval::makeRgInstance(setup));
    }
    std::cout << "p_t=" << thresholds[c] << "  "
              << eval::describeInstance(instances[c].front().instance) << '\n';
  }

  for (const int k : budgets) {
    std::vector<std::string> row{std::to_string(k)};
    for (const auto& column : instances) {
      util::RunningStats stat;
      for (const auto& spatial : column) {
        const auto cands = core::CandidateSet::allPairs(
            spatial.instance.graph().nodeCount());
        const auto aa =
            core::sandwichApproximation(spatial.instance, cands, {.k = k});
        stat.push(aa.dataDependentRatio().value_or(0.0));
      }
      row.push_back(util::formatFixed(stat.mean(), 4));
    }
    table.addRow(std::move(row));
  }

  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nexpected shape: ratios in the paper's ~0.05-0.45 band, "
               "growing with p_t; decreasing (or plateauing once nu "
               "saturates at m) as k grows\n";
  return 0;
}
