#include "harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "eval/report.h"
#include "obs/metrics.h"
#include "util/env.h"
#include "util/stats.h"

namespace msc::bench {

namespace {

// JSON string/number helpers mirroring the metrics exporter: escape control
// characters, render non-finite numbers as null.
void appendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void appendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  std::ostringstream os;
  os.precision(9);
  os << v;
  out += os.str();
}

}  // namespace

HarnessConfig configFromEnv(HarnessConfig base) {
  base.warmup = static_cast<int>(
      std::max<std::int64_t>(0, util::envInt("MSC_BENCH_WARMUP", base.warmup)));
  base.repeats = static_cast<int>(std::max<std::int64_t>(
      1, util::envInt("MSC_BENCH_REPEATS", base.repeats)));
  return base;
}

Harness::Harness(std::string benchName, HarnessConfig config)
    : name_(std::move(benchName)), config_(config) {}

const CaseResult& Harness::run(const std::string& caseName,
                               const std::function<void()>& fn) {
  const bool wasEnabled = obs::enabled();
  obs::setEnabled(true);

  for (int i = 0; i < config_.warmup; ++i) fn();

  CaseResult result;
  result.name = caseName;
  result.runs.reserve(static_cast<std::size_t>(config_.repeats));
  util::RunningStats stats;
  std::vector<double> seconds;
  seconds.reserve(static_cast<std::size_t>(config_.repeats));

  for (int i = 0; i < config_.repeats; ++i) {
    obs::resetAll();
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    RunSample sample;
    sample.seconds = secs;
    for (const auto& row : obs::Registry::global().counters()) {
      if (row.value != 0) sample.counters.emplace_back(row.name, row.value);
    }
    result.runs.push_back(std::move(sample));
    stats.push(secs);
    seconds.push_back(secs);
  }

  obs::resetAll();
  obs::setEnabled(wasEnabled);

  result.median = util::percentile(seconds, 50.0);
  result.mean = stats.mean();
  result.stddev = stats.stddev();
  result.min = stats.min();
  result.max = stats.max();
  result.p50 = result.median;
  result.p99 = util::percentile(seconds, 99.0);
  results_.push_back(std::move(result));
  return results_.back();
}

void Harness::addPhaseSamples(const std::string& phaseName,
                              const std::vector<double>& seconds) {
  if (results_.empty()) {
    throw std::logic_error(
        "bench harness: addPhaseSamples() before any run()");
  }
  if (seconds.empty()) return;
  PhaseResult phase;
  phase.name = phaseName;
  phase.count = seconds.size();
  phase.median = util::percentile(seconds, 50.0);
  phase.p99 = util::percentile(seconds, 99.0);
  results_.back().phases.push_back(std::move(phase));
}

std::string Harness::toJson() const {
  std::string out;
  out += "{\n  \"schema\": \"msc.bench.v1\",\n  \"name\": \"";
  appendEscaped(out, name_);
  out += "\",\n  \"warmup\": " + std::to_string(config_.warmup);
  out += ",\n  \"repeats\": " + std::to_string(config_.repeats);
  out += ",\n  \"cases\": {";
  bool firstCase = true;
  for (const CaseResult& c : results_) {
    out += firstCase ? "\n" : ",\n";
    firstCase = false;
    out += "    \"";
    appendEscaped(out, c.name);
    out += "\": {\n      \"seconds\": [";
    for (std::size_t i = 0; i < c.runs.size(); ++i) {
      if (i != 0) out += ", ";
      appendNumber(out, c.runs[i].seconds);
    }
    out += "],\n      \"median\": ";
    appendNumber(out, c.median);
    out += ",\n      \"mean\": ";
    appendNumber(out, c.mean);
    out += ",\n      \"stddev\": ";
    appendNumber(out, c.stddev);
    out += ",\n      \"min\": ";
    appendNumber(out, c.min);
    out += ",\n      \"max\": ";
    appendNumber(out, c.max);
    out += ",\n      \"p50\": ";
    appendNumber(out, c.p50);
    out += ",\n      \"p99\": ";
    appendNumber(out, c.p99);
    if (!c.phases.empty()) {
      out += ",\n      \"phases\": {";
      bool firstPhase = true;
      for (const PhaseResult& p : c.phases) {
        if (!firstPhase) out += ", ";
        firstPhase = false;
        out += '"';
        appendEscaped(out, p.name);
        out += "\": {\"count\": " + std::to_string(p.count) + ", \"median\": ";
        appendNumber(out, p.median);
        out += ", \"p99\": ";
        appendNumber(out, p.p99);
        out += '}';
      }
      out += '}';
    }
    out += ",\n      \"runs\": [";
    for (std::size_t i = 0; i < c.runs.size(); ++i) {
      out += i == 0 ? "\n        {" : ",\n        {";
      out += "\"seconds\": ";
      appendNumber(out, c.runs[i].seconds);
      out += ", \"counters\": {";
      bool firstCounter = true;
      for (const auto& [key, value] : c.runs[i].counters) {
        if (!firstCounter) out += ", ";
        firstCounter = false;
        out += '"';
        appendEscaped(out, key);
        out += "\": " + std::to_string(value);
      }
      out += "}}";
    }
    if (!c.runs.empty()) out += "\n      ";
    out += "]\n    }";
  }
  if (!results_.empty()) out += "\n  ";
  out += "}\n}\n";
  return out;
}

std::string Harness::writeJson() const {
  const std::string path = eval::outputDir() + "/BENCH_" + name_ + ".json";
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("bench harness: cannot open " + path);
  }
  file << toJson();
  return path;
}

}  // namespace msc::bench
