// Validation — Monte-Carlo delivery vs the analytic model (DESIGN.md §3).
//
// The whole optimization stands on the §III model: a pair is "maintained"
// iff its best path's analytic failure probability is <= p_t. This bench
// closes the loop with stochastic simulation: sample link states, forward
// along the installed routes, and check that
//   (a) simulated fixed-path delivery matches e^-length per pair,
//   (b) every pair the optimizer reports as maintained empirically
//       delivers at rate >= 1 - p_t (up to MC noise), and
//   (c) the MC engine's multi-path reliability R̂ dominates opportunistic
//       delivery pair-for-pair with NO noise tolerance: the validator
//       (sim/delivery) and the solver (mc/reliability) draw from the same
//       mc::WorldSet code path, so at equal seed and trial count they see
//       the exact same worlds, and connectivity is implied by any
//       within-threshold delivery.
#include <cmath>
#include <iostream>
#include <sstream>

#include "core/candidates.h"
#include "core/routing.h"
#include "core/sandwich.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "mc/reliability.h"
#include "mc/world_sampler.h"
#include "sim/delivery.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

void runDataset(const std::string& dataset, double pt, int k, int trials,
                std::uint64_t seed) {
  const msc::eval::SpatialInstance spatial = [&] {
    if (dataset == "RG") {
      msc::eval::RgSetup setup;
      setup.nodes = 100;
      setup.pairs = 30;
      setup.failureThreshold = pt;
      setup.seed = seed;
      return msc::eval::makeRgInstance(setup);
    }
    msc::eval::GowallaSetup setup;
    setup.pairs = 30;
    setup.failureThreshold = pt;
    setup.seed = seed;
    return msc::eval::makeGowallaInstance(setup);
  }();
  const auto& inst = spatial.instance;
  const auto cands =
      msc::core::CandidateSet::allPairs(inst.graph().nodeCount());
  const auto aa = msc::core::sandwichApproximation(inst, cands, {.k = k});
  const auto routes = msc::core::routeAllPairs(inst, aa.placement);

  msc::sim::MonteCarloConfig cfg;
  cfg.trials = trials;
  cfg.seed = seed ^ 0x5151ULL;
  const auto est = msc::sim::estimateDelivery(inst, aa.placement, cfg);

  // The solver's view of the SAME worlds (identical seed and count):
  // sampled multi-path reliability per pair under the AA placement.
  const msc::mc::WorldSet worlds(inst.graph(),
                                 {.worlds = trials, .seed = cfg.seed});
  msc::mc::ReliabilityEvaluator reliability(inst, worlds);
  reliability.evaluate(aa.placement);
  const auto mcEst = reliability.pairEstimates();

  std::cout << "\n=== " << dataset << ", p_t=" << pt << ", k=" << k
            << ": AA maintains " << aa.sigma << "/" << inst.pairCount()
            << " ===\n";
  msc::util::TableWriter table({"pair", "analytic", "simulated",
                                "opportunistic", "mc R", "target 1-p_t",
                                "status"});
  msc::util::RunningStats absError;
  int violations = 0;
  int dominanceBreaks = 0;
  for (std::size_t i = 0; i < est.size(); ++i) {
    const bool maintained = routes[i].meetsRequirement;
    absError.push(
        std::abs(est[i].analyticFixedPath - est[i].simulatedFixedPath));
    if (maintained &&
        est[i].simulatedFixedPath < (1.0 - pt) - 0.03) {
      ++violations;
    }
    // Exact dominance on shared worlds: a world delivering within d_t
    // certainly connects the pair, so R̂ >= opportunistic, bit-for-bit.
    if (mcEst[i].reliability < est[i].simulatedOpportunistic) {
      ++dominanceBreaks;
    }
    std::ostringstream pair;
    pair << est[i].pair.u << "-" << est[i].pair.w;
    table.addRow({pair.str(),
                  msc::util::formatFixed(est[i].analyticFixedPath, 3),
                  msc::util::formatFixed(est[i].simulatedFixedPath, 3),
                  msc::util::formatFixed(est[i].simulatedOpportunistic, 3),
                  msc::util::formatFixed(mcEst[i].reliability, 3),
                  msc::util::formatFixed(1.0 - pt, 3),
                  maintained ? "maintained" : "broken"});
  }
  table.print(std::cout);
  std::cout << "mean |analytic - simulated| = "
            << msc::util::formatFixed(absError.mean(), 4)
            << " (MC noise ~ 1/sqrt(trials)); maintained pairs below target: "
            << violations
            << "; pairs with R < opportunistic (must be 0, shared worlds): "
            << dominanceBreaks << "\n";
}

}  // namespace

int main() {
  using namespace msc;
  eval::printHeader(std::cout,
                    "Validation: Monte-Carlo delivery vs analytic model",
                    "model of paper §III (Eq. 1/2)");
  const int trials = util::scaledIters(
      static_cast<int>(util::envInt("MSC_MC_TRIALS", 5000)));
  std::cout << "Monte-Carlo trials per instance: " << trials << '\n';

  runDataset("RG", 0.14, 6, trials, 1);
  runDataset("Gowalla", 0.27, 6, trials, 9);

  std::cout << "\nexpected: simulated ~= analytic per pair; zero maintained "
               "pairs below their delivery target\n";
  return 0;
}
