// Ablation — EA mutation rate (DESIGN.md §4): the paper flips each
// candidate edge with probability 2/(n(n-1)) = 1/C (expected one flip per
// offspring). This bench sweeps c/C for c in {0.5, 1, 2, 4} to show the
// choice is near-optimal: lower rates stall, higher rates devolve toward
// random search.
#include <iostream>
#include <vector>

#include "core/candidates.h"
#include "core/ea.h"
#include "core/sigma.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace msc;
  eval::printHeader(std::cout, "Ablation: EA mutation rate c/C",
                    "DESIGN.md ablation index");
  const int iterations = util::scaledIters(
      static_cast<int>(util::envInt("MSC_EA_ITERS", 500)));
  const int trials =
      util::scaledIters(static_cast<int>(util::envInt("MSC_TRIALS", 5)));
  const int k = 6;
  std::cout << "RG n=100 m=60 p_t=0.14, k=" << k << ", r=" << iterations
            << ", trials=" << trials << '\n';

  util::TableWriter table({"c (flips/offspring)", "EA mean", "ci95"});
  for (const double c : {0.5, 1.0, 2.0, 4.0}) {
    util::RunningStats stat;
    for (int trial = 0; trial < trials; ++trial) {
      eval::RgSetup setup;
      setup.nodes = 100;
      setup.pairs = 60;
      setup.failureThreshold = 0.14;
      setup.seed = static_cast<std::uint64_t>(trial + 1);
      const auto spatial = eval::makeRgInstance(setup);
      const auto cands =
          core::CandidateSet::allPairs(spatial.instance.graph().nodeCount());
      core::SigmaEvaluator sigma(spatial.instance);
      core::EaConfig cfg;
      cfg.iterations = iterations;
      cfg.flipProbability = c / static_cast<double>(cands.size());
      cfg.seed = static_cast<std::uint64_t>(trial + 1);
      stat.push(core::evolutionaryAlgorithm(sigma, cands, {.k = k, .seed = cfg.seed}, cfg).value);
    }
    table.addRow({util::formatFixed(c, 1), util::formatFixed(stat.mean(), 2),
                  util::formatFixed(stat.ci95HalfWidth(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nreading: c around 1 (the paper's 2/(n(n-1))) performs "
               "best; the GSEMO analysis assumes exactly this regime.\n";
  return 0;
}
