// Fig 4 — maintained connections as a function of the iteration budget r
// for EA and AEA, with the (r-independent) AA value as a reference line
// (paper §VII-D).
//
//   (a) RG, n = 100, m = 80, p_t = 0.14
//   (b) Gowalla-style, n = 134, m = 76, p_t = 0.23
//
// Expected shape: both evolutionary algorithms improve with r; AEA starts
// below AA but overtakes it at large r; EA stays well below both.
#include <iostream>
#include <vector>

#include "core/aea.h"
#include "core/candidates.h"
#include "core/ea.h"
#include "core/sandwich.h"
#include "core/sigma.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "util/env.h"
#include "util/table.h"

namespace {

void runDataset(const std::string& dataset, double pt,
                const std::vector<int>& budgets, int maxIterations,
                std::uint64_t seed) {
  std::cout << "\n=== Fig 4(" << (dataset == "RG" ? 'a' : 'b')
            << "): " << dataset << ", p_t=" << pt << " ===\n";

  const msc::eval::SpatialInstance spatial = [&] {
    if (dataset == "RG") {
      msc::eval::RgSetup setup;
      setup.nodes = 100;
      setup.pairs = 80;
      setup.failureThreshold = pt;
      setup.seed = seed;
      return msc::eval::makeRgInstance(setup);
    }
    msc::eval::GowallaSetup setup;
    setup.pairs = 76;
    setup.failureThreshold = pt;
    setup.seed = seed;
    return msc::eval::makeGowallaInstance(setup);
  }();
  const auto& inst = spatial.instance;
  std::cout << msc::eval::describeInstance(inst) << '\n';
  const auto cands =
      msc::core::CandidateSet::allPairs(inst.graph().nodeCount());

  // Checkpoints along the iteration axis.
  std::vector<int> checkpoints;
  for (int r = maxIterations / 10; r <= maxIterations;
       r += maxIterations / 10) {
    checkpoints.push_back(r);
  }

  for (const int k : budgets) {
    const auto aa = msc::core::sandwichApproximation(inst, cands, {.k = k});

    msc::core::SigmaEvaluator sigma(inst);
    msc::core::EaConfig eaCfg;
    eaCfg.iterations = maxIterations;
    eaCfg.seed = seed + static_cast<std::uint64_t>(k);
    const auto ea = msc::core::evolutionaryAlgorithm(sigma, cands, {.k = k, .seed = eaCfg.seed}, eaCfg);

    msc::core::AeaConfig aeaCfg;
    aeaCfg.iterations = maxIterations;
    aeaCfg.populationSize = 10;
    aeaCfg.delta = 0.05;
    aeaCfg.seed = seed + static_cast<std::uint64_t>(k);
    const auto aea =
        msc::core::adaptiveEvolutionaryAlgorithm(sigma, cands, {.k = k, .seed = aeaCfg.seed}, aeaCfg);

    msc::util::TableWriter table({"r", "EA", "AEA", "AA (ref)"});
    for (const int r : checkpoints) {
      table.addRow(
          {std::to_string(r),
           msc::util::formatFixed(
               ea.bestByIteration[static_cast<std::size_t>(r - 1)], 0),
           msc::util::formatFixed(
               aea.bestByIteration[static_cast<std::size_t>(r - 1)], 0),
           msc::util::formatFixed(aa.sigma, 0)});
    }
    std::cout << "\n-- k = " << k << " --\n";
    table.print(std::cout);
    std::cerr << "  [fig4 " << dataset << "] k=" << k << " done\n";
  }
}

}  // namespace

int main() {
  using namespace msc;
  eval::printHeader(std::cout, "Fig 4: EA/AEA value vs iteration budget r",
                    "ICDCS'19 Fig. 4(a)/(b)");
  const int maxIterations = util::scaledIters(
      static_cast<int>(util::envInt("MSC_EA_ITERS", 500)));
  std::cout << "max r = " << maxIterations << " (paper sweeps to 500)\n";

  runDataset("RG", 0.14, {4, 8}, maxIterations, 1);
  runDataset("Gowalla", 0.23, {4, 8}, maxIterations, 9);

  std::cout << "\nexpected shape: EA/AEA nondecreasing in r; AEA crosses "
               "above the AA reference for large r; EA stays below\n";
  return 0;
}
