// Fig 5 — dynamic networks (paper §VII-E): one placement serves a series
// of T topologies sampled from a tactical group-mobility trace (RPGM
// substitute for the ARL traces), objective = total maintained connections
// across instances.
//
//   (a) total maintained connections vs budget k for several p_t
//       (n = 50, m = 30 per instance, T = 30)
//   (b) total maintained connections vs T for several k (p_t = 0.12)
//
// Expected shape: totals increase with k, p_t and T; AEA >= AA >> EA; the
// per-instance average decreases as T grows (same budget, more pairs).
#include <iostream>
#include <vector>

#include "core/aea.h"
#include "core/candidates.h"
#include "core/dynamic.h"
#include "core/ea.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "util/env.h"
#include "util/table.h"

namespace {

msc::core::DynamicProblem makeProblem(int timeInstances, double pt,
                                      std::uint64_t seed,
                                      const msc::core::CandidateSet& cands) {
  msc::eval::DynamicSetup setup;
  setup.nodes = 50;
  setup.pairsPerInstance = 30;
  setup.timeInstances = timeInstances;
  setup.failureThreshold = pt;
  setup.seed = seed;
  return msc::core::DynamicProblem(msc::eval::makeDynamicInstances(setup),
                                   cands);
}

struct AlgoValues {
  double aa = 0.0;
  double ea = 0.0;
  double aea = 0.0;
};

AlgoValues runAll(msc::core::DynamicProblem& problem,
                  const msc::core::CandidateSet& cands, int k, int iterations,
                  std::uint64_t seed) {
  AlgoValues out;
  out.aa = problem.sandwich(cands, {.k = k}).sigma;

  msc::core::EaConfig eaCfg;
  eaCfg.iterations = iterations;
  eaCfg.seed = seed;
  out.ea = msc::core::evolutionaryAlgorithm(problem.sigmaFn(), cands, {.k = k, .seed = eaCfg.seed}, eaCfg)
               .value;

  msc::core::AeaConfig aeaCfg;
  aeaCfg.iterations = iterations;
  aeaCfg.populationSize = 10;
  aeaCfg.delta = 0.05;
  aeaCfg.seed = seed;
  out.aea = msc::core::adaptiveEvolutionaryAlgorithm(
                problem.sigma(), cands, {.k = k, .seed = aeaCfg.seed}, aeaCfg)
                .value;
  return out;
}

}  // namespace

int main() {
  using namespace msc;
  eval::printHeader(std::cout, "Fig 5: dynamic networks (RPGM trace)",
                    "ICDCS'19 Fig. 5(a)/(b)");
  const int iterations = util::scaledIters(
      static_cast<int>(util::envInt("MSC_EA_ITERS", 500)));
  const auto seed = static_cast<std::uint64_t>(util::envInt("MSC_SEED", 11));
  std::cout << "EA/AEA iterations r = " << iterations
            << " (paper: 500); n=50, m=30/instance\n";

  const auto cands = core::CandidateSet::allPairs(50);

  // ---- (a): vs k, several p_t, T = 30 -------------------------------
  {
    std::cout << "\n=== Fig 5(a): total maintained connections vs k (T=30) "
                 "===\n";
    util::TableWriter table(
        {"p_t", "k", "AA", "EA", "AEA", "total pairs"});
    for (const double pt : {0.10, 0.11, 0.12}) {
      auto problem = makeProblem(30, pt, seed, cands);
      for (const int k : {5, 10, 15, 20}) {
        const auto v = runAll(problem, cands, k, iterations,
                              seed + static_cast<std::uint64_t>(k));
        table.addRow({util::formatFixed(pt, 2), std::to_string(k),
                      util::formatFixed(v.aa, 0), util::formatFixed(v.ea, 0),
                      util::formatFixed(v.aea, 0),
                      std::to_string(problem.totalPairCount())});
        std::cerr << "  [fig5a] p_t=" << pt << " k=" << k << " done\n";
      }
    }
    table.print(std::cout);
  }

  // ---- (b): vs T, several k, p_t = 0.12 -----------------------------
  {
    std::cout << "\n=== Fig 5(b): total maintained connections vs T "
                 "(p_t=0.12) ===\n";
    util::TableWriter table({"T", "k", "AA", "EA", "AEA", "total pairs",
                             "AA avg/instance"});
    for (const int timeInstances : {5, 10, 15, 20, 25, 30}) {
      auto problem = makeProblem(timeInstances, 0.12, seed, cands);
      for (const int k : {5, 10, 15, 20}) {
        const auto v = runAll(problem, cands, k, iterations,
                              seed + static_cast<std::uint64_t>(17 * k));
        table.addRow(
            {std::to_string(timeInstances), std::to_string(k),
             util::formatFixed(v.aa, 0), util::formatFixed(v.ea, 0),
             util::formatFixed(v.aea, 0),
             std::to_string(problem.totalPairCount()),
             util::formatFixed(v.aa / timeInstances, 2)});
        std::cerr << "  [fig5b] T=" << timeInstances << " k=" << k
                  << " done\n";
      }
    }
    table.print(std::cout);
  }

  std::cout << "\nexpected shape: totals grow with k, p_t, T; AEA >= AA >> "
               "EA; AA avg/instance decreases as T grows\n";
  return 0;
}
