// Fig 2 — maintained social connections: Approximation Algorithm vs the
// best-of-500 random-selection baseline, as a function of the shortcut
// budget k, on both datasets (paper §VII-C).
//
// Expected shape: AA >= random everywhere, with the gap widening as k
// grows (informed placement compounds; random placement wastes edges).
#include <iostream>
#include <vector>

#include "core/candidates.h"
#include "core/random_baseline.h"
#include "core/sandwich.h"
#include "core/sigma.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

void runDataset(const std::string& dataset,
                const std::vector<double>& thresholds,
                const std::vector<int>& budgets, int trials,
                std::uint64_t baseSeed) {
  std::cout << "\n=== dataset: " << dataset << " ===\n";
  msc::util::TableWriter table(
      {"p_t", "k", "AA", "Random(best)", "Random(mean)", "m"});
  for (const double pt : thresholds) {
    for (const int k : budgets) {
      msc::util::RunningStats aaStat, rndBestStat, rndMeanStat;
      int m = 0;
      for (int trial = 0; trial < trials; ++trial) {
        const std::uint64_t seed = baseSeed + 100 * trial;
        msc::eval::SpatialInstance spatial = [&] {
          if (dataset == "RG") {
            msc::eval::RgSetup setup;
            setup.nodes = 100;
            setup.pairs = 40;
            setup.failureThreshold = pt;
            setup.seed = seed;
            return msc::eval::makeRgInstance(setup);
          }
          msc::eval::GowallaSetup setup;
          setup.pairs = 40;
          setup.failureThreshold = pt;
          setup.seed = seed;
          return msc::eval::makeGowallaInstance(setup);
        }();
        const auto& inst = spatial.instance;
        m = inst.pairCount();
        const auto cands =
            msc::core::CandidateSet::allPairs(inst.graph().nodeCount());

        const auto aa = msc::core::sandwichApproximation(inst, cands, {.k = k});
        aaStat.push(aa.sigma);

        msc::core::SigmaEvaluator sigma(inst);
        msc::core::RandomBaselineConfig rndCfg;
        rndCfg.repeats = msc::util::scaledIters(500);
        rndCfg.seed = seed ^ 0xa0a0ULL;
        const auto rnd = msc::core::randomBaseline(sigma, cands, k, rndCfg);
        rndBestStat.push(rnd.value);
        rndMeanStat.push(rnd.meanValue);
      }
      table.addRow({msc::util::formatFixed(pt, 2), std::to_string(k),
                    msc::util::formatPlusMinus(aaStat.mean(),
                                               aaStat.ci95HalfWidth(), 1),
                    msc::util::formatPlusMinus(rndBestStat.mean(),
                                               rndBestStat.ci95HalfWidth(), 1),
                    msc::util::formatFixed(rndMeanStat.mean(), 1),
                    std::to_string(m)});
    }
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace msc;
  eval::printHeader(std::cout,
                    "Fig 2: AA vs random selection (maintained connections)",
                    "ICDCS'19 Fig. 2");
  const int trials = util::scaledIters(
      static_cast<int>(util::envInt("MSC_TRIALS", 3)));
  std::cout << "trials per cell: " << trials << '\n';

  runDataset("RG", {0.08, 0.14}, {2, 4, 6, 8, 10}, trials, 1);
  runDataset("Gowalla", {0.23, 0.31}, {2, 4, 6, 8, 10}, trials, 9);

  std::cout << "\nexpected shape: AA >= Random(best) everywhere; both grow "
               "with k and p_t; gap widens with k\n";
  return 0;
}
