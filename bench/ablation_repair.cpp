// Ablation — placement repair in evolving networks (DESIGN.md §4
// extension): a rolling-horizon experiment over the RPGM trace. At each
// time step the operator can (i) keep the t=0 placement forever (static),
// (ii) re-solve from scratch (fresh greedy — maximum quality, maximum
// churn), or (iii) repair the previous placement with a small swap budget.
// Reports maintained connections and cumulative relocations ("churn") —
// the quality/churn trade-off repair is designed to win.
#include <iostream>
#include <algorithm>
#include <vector>

#include "core/candidates.h"
#include "core/greedy.h"
#include "core/repair.h"
#include "core/sigma.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "util/env.h"
#include "util/table.h"

namespace {

int placementDiff(const msc::core::ShortcutList& a,
                  const msc::core::ShortcutList& b) {
  const auto sa = msc::core::sorted(a);
  int changed = 0;
  for (const auto& f : msc::core::sorted(b)) {
    if (!std::binary_search(sa.begin(), sa.end(), f)) ++changed;
  }
  return changed;
}

}  // namespace

int main() {
  using namespace msc;
  eval::printHeader(std::cout, "Ablation: placement repair vs re-solve",
                    "DESIGN.md ablation index");
  const int k = static_cast<int>(util::envInt("MSC_K", 8));
  const int swapBudget = static_cast<int>(util::envInt("MSC_SWAPS", 2));
  const int horizon = util::scaledIters(
      static_cast<int>(util::envInt("MSC_T", 15)));

  eval::DynamicSetup setup;
  setup.timeInstances = horizon;
  auto instances = eval::makeDynamicInstances(setup);
  std::cout << "RPGM trace: n=" << setup.nodes << ", T=" << horizon
            << ", k=" << k << ", repair swap budget=" << swapBudget << "\n\n";

  const auto cands = core::CandidateSet::allPairs(setup.nodes);

  // t = 0 placement shared by all three policies.
  core::SigmaEvaluator sigma0(instances[0]);
  const auto initial = core::greedyMaximize(sigma0, cands, {.k = k}).placement;

  util::TableWriter table({"t", "m_t", "static", "fresh", "repair",
                           "churn fresh", "churn repair"});
  core::ShortcutList freshPrev = initial;
  core::ShortcutList repairPrev = initial;
  double totStatic = 0.0, totFresh = 0.0, totRepair = 0.0;
  int churnFresh = 0, churnRepair = 0;

  for (std::size_t t = 0; t < instances.size(); ++t) {
    core::SigmaEvaluator sigma(instances[t]);
    const double staticValue = sigma.value(initial);

    const auto fresh = core::greedyMaximize(sigma, cands, {.k = k});
    const int cf = placementDiff(freshPrev, fresh.placement);

    const auto repaired =
        core::repairPlacement(sigma, cands, repairPrev, swapBudget);
    const int cr = placementDiff(repairPrev, repaired.placement);

    totStatic += staticValue;
    totFresh += fresh.value;
    totRepair += repaired.value;
    churnFresh += cf;
    churnRepair += cr;

    table.addRow({std::to_string(t),
                  std::to_string(instances[t].pairCount()),
                  util::formatFixed(staticValue, 0),
                  util::formatFixed(fresh.value, 0),
                  util::formatFixed(repaired.value, 0), std::to_string(cf),
                  std::to_string(cr)});
    freshPrev = fresh.placement;
    repairPrev = repaired.placement;
  }
  table.print(std::cout);
  std::cout << "\ntotals: static " << totStatic << ", fresh " << totFresh
            << " (churn " << churnFresh << "), repair " << totRepair
            << " (churn " << churnRepair << ")\n";
  std::cout << "reading: repair recovers most of the fresh-solve quality at "
               "a fraction of the relocations; static decays as the groups "
               "move.\n";
  return 0;
}
