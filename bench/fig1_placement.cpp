// Fig 1 — shortcut edge placement picture: Approximation Algorithm vs the
// random-selection baseline on one RG instance (paper §VII-C).
//
// Prints both placements with per-pair satisfied status and exports DOT
// files (out/fig1_aa.dot / out/fig1_random.dot, honouring MSC_OUT_DIR;
// render with `neato -n2 -Tpng`).
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/candidates.h"
#include "core/random_baseline.h"
#include "core/sandwich.h"
#include "core/sigma.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "graph/graph_io.h"
#include "util/env.h"
#include "util/table.h"

namespace {

void report(const std::string& label, const msc::core::Instance& inst,
            const msc::core::ShortcutList& placement,
            const std::vector<msc::gen::Point>& positions,
            const std::string& dotPath) {
  msc::core::SigmaEvaluator sigma(inst);
  sigma.evaluate(placement);

  std::cout << "\n--- " << label << " ---\n";
  std::cout << "shortcuts:";
  for (const auto& f : placement) {
    std::cout << " (" << f.a << "," << f.b << ")";
  }
  std::cout << "\nmaintained " << sigma.satisfiedCount() << " / "
            << inst.pairCount() << " social pairs\n";

  msc::util::TableWriter table({"pair", "base dist", "dist w/ F", "status"});
  for (int i = 0; i < inst.pairCount(); ++i) {
    const auto& p = inst.pairs()[static_cast<std::size_t>(i)];
    std::ostringstream name;
    name << "{" << p.u << "," << p.w << "}";
    const double base = inst.baseDistance(p);
    table.addRow({name.str(),
                  base == msc::graph::kInfDist
                      ? "inf"
                      : msc::util::formatFixed(base, 3),
                  msc::util::formatFixed(sigma.pairDistance(i), 3),
                  sigma.pairSatisfied(i) ? "maintained" : "broken"});
  }
  table.print(std::cout);

  msc::graph::DotStyle style;
  std::vector<std::pair<double, double>> pos;
  for (const auto& p : positions) pos.push_back({p.x, p.y});
  style.positions = pos;
  for (const auto& f : placement) style.shortcuts.push_back({f.a, f.b});
  for (const auto& p : inst.pairs()) style.socialPairs.push_back({p.u, p.w});
  std::ofstream dot(dotPath);
  msc::graph::writeDot(dot, inst.graph(), style);
  std::cout << "layout written to " << dotPath << '\n';
}

}  // namespace

int main() {
  using namespace msc;

  eval::printHeader(std::cout,
                    "Fig 1: placement picture, AA vs random selection",
                    "ICDCS'19 Fig. 1");

  eval::RgSetup setup;
  setup.nodes = 100;
  setup.pairs = 17;
  setup.failureThreshold = 0.14;
  setup.seed = static_cast<std::uint64_t>(util::envInt("MSC_SEED", 1));
  const auto spatial = eval::makeRgInstance(setup);
  const auto& inst = spatial.instance;
  std::cout << eval::describeInstance(inst) << '\n';

  const int k = static_cast<int>(util::envInt("MSC_K", 6));
  const auto cands = core::CandidateSet::allPairs(inst.graph().nodeCount());

  const std::string outDir = eval::outputDir();
  const auto aa = core::sandwichApproximation(inst, cands, {.k = k});
  report("Approximation Algorithm (k=" + std::to_string(k) + ")", inst,
         aa.placement, spatial.positions, outDir + "/fig1_aa.dot");

  core::SigmaEvaluator sigma(inst);
  core::RandomBaselineConfig rndCfg;
  rndCfg.repeats = util::scaledIters(500);
  rndCfg.seed = setup.seed;
  const auto rnd = core::randomBaseline(sigma, cands, k, rndCfg);
  report("Random selection (best of " + std::to_string(rndCfg.repeats) + ")",
         inst, rnd.placement, spatial.positions, outDir + "/fig1_random.dot");

  std::cout << "\nexpected shape: AA maintains at least as many pairs as the "
               "random baseline, with shortcuts bridging pair clusters\n";
  return 0;
}
