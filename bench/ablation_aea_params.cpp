// Ablation — AEA hyper-parameters (DESIGN.md §4): sensitivity of AEA to
// the exploration probability delta and the population size l. The paper
// fixes delta = 0.05, l = 10; this bench shows how performance degrades at
// the extremes (pure greedy swaps delta=0 get stuck; pure random delta=1
// wastes iterations; l=1 loses diversity).
#include <iostream>
#include <vector>

#include "core/aea.h"
#include "core/candidates.h"
#include "core/sigma.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace msc;
  eval::printHeader(std::cout, "Ablation: AEA delta / population size",
                    "DESIGN.md ablation index");
  const int iterations = util::scaledIters(
      static_cast<int>(util::envInt("MSC_EA_ITERS", 300)));
  const int trials =
      util::scaledIters(static_cast<int>(util::envInt("MSC_TRIALS", 5)));
  const int k = 6;
  std::cout << "RG n=100 m=60 p_t=0.14, k=" << k << ", r=" << iterations
            << ", trials=" << trials << '\n';

  auto makeInstance = [&](std::uint64_t seed) {
    eval::RgSetup setup;
    setup.nodes = 100;
    setup.pairs = 60;
    setup.failureThreshold = 0.14;
    setup.seed = seed;
    return eval::makeRgInstance(setup);
  };

  {
    std::cout << "\n--- delta sweep (l = 10) ---\n";
    util::TableWriter table({"delta", "AEA mean", "ci95"});
    for (const double delta : {0.0, 0.05, 0.2, 0.5, 1.0}) {
      util::RunningStats stat;
      for (int trial = 0; trial < trials; ++trial) {
        const auto spatial = makeInstance(static_cast<std::uint64_t>(trial + 1));
        const auto cands = core::CandidateSet::allPairs(
            spatial.instance.graph().nodeCount());
        core::SigmaEvaluator sigma(spatial.instance);
        core::AeaConfig cfg;
        cfg.iterations = iterations;
        cfg.populationSize = 10;
        cfg.delta = delta;
        cfg.seed = static_cast<std::uint64_t>(trial + 1);
        stat.push(core::adaptiveEvolutionaryAlgorithm(sigma, cands, {.k = k, .seed = cfg.seed}, cfg)
                      .value);
      }
      table.addRow({util::formatFixed(delta, 2),
                    util::formatFixed(stat.mean(), 2),
                    util::formatFixed(stat.ci95HalfWidth(), 2)});
    }
    table.print(std::cout);
  }

  {
    std::cout << "\n--- population-size sweep (delta = 0.05) ---\n";
    util::TableWriter table({"l", "AEA mean", "ci95"});
    for (const int l : {1, 5, 10, 20}) {
      util::RunningStats stat;
      for (int trial = 0; trial < trials; ++trial) {
        const auto spatial = makeInstance(static_cast<std::uint64_t>(trial + 1));
        const auto cands = core::CandidateSet::allPairs(
            spatial.instance.graph().nodeCount());
        core::SigmaEvaluator sigma(spatial.instance);
        core::AeaConfig cfg;
        cfg.iterations = iterations;
        cfg.populationSize = l;
        cfg.delta = 0.05;
        cfg.seed = static_cast<std::uint64_t>(trial + 1);
        stat.push(core::adaptiveEvolutionaryAlgorithm(sigma, cands, {.k = k, .seed = cfg.seed}, cfg)
                      .value);
      }
      table.addRow({std::to_string(l), util::formatFixed(stat.mean(), 2),
                    util::formatFixed(stat.ci95HalfWidth(), 2)});
    }
    table.print(std::cout);
  }

  std::cout << "\nreading: small positive delta beats both extremes; "
               "moderate l beats l=1 (diversity) without diluting the "
               "iteration budget.\n";
  return 0;
}
