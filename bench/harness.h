// Shared bench regression harness: warmup + repeated timed runs per case,
// median/stddev aggregation, a metrics-registry counter snapshot per run,
// and a machine-readable BENCH_<name>.json export (schema "msc.bench.v1")
// under eval::outputDir() for tools/bench_diff.py to compare across
// commits.
//
// Usage in a bench binary:
//
//   msc::bench::Harness h("micro_core");
//   h.run("greedy_k4", [&] { ... });          // 1 warmup + 5 timed runs
//   std::cout << "bench json: " << h.writeJson() << '\n';
//
// Repeat counts come from HarnessConfig, overridable per process with
// MSC_BENCH_WARMUP / MSC_BENCH_REPEATS (the usual env-knob pattern, see
// util/env.h).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace msc::bench {

struct HarnessConfig {
  int warmup = 1;   ///< Untimed runs per case before measurement.
  int repeats = 5;  ///< Timed runs per case.
};

/// Defaults with MSC_BENCH_WARMUP / MSC_BENCH_REPEATS applied (each clamped
/// to >= 0 / >= 1 respectively).
HarnessConfig configFromEnv(HarnessConfig base = {});

/// One timed run: wall seconds plus the metrics-registry counter values the
/// run produced (the registry is reset before, snapshotted after — sorted
/// by name).
struct RunSample {
  double seconds = 0.0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// Aggregated duration samples for one request phase within a case
/// (queue_wait / apsp / round_scan / ... — the serve usage-block phases).
struct PhaseResult {
  std::string name;
  std::size_t count = 0;  ///< Samples the aggregates were computed from.
  double median = 0.0;
  double p99 = 0.0;
};

/// Aggregated result of one named case.
struct CaseResult {
  std::string name;
  std::vector<RunSample> runs;   ///< One entry per timed run, in order.
  double median = 0.0;           ///< Of wall seconds across runs.
  double mean = 0.0;
  double stddev = 0.0;           ///< Unbiased sample stddev (0 for 1 run).
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;              ///< Interpolated percentile (== median).
  double p99 = 0.0;              ///< ~max at default repeat counts.
  std::vector<PhaseResult> phases;  ///< Optional; see addPhaseSamples().
};

/// Collects cases and writes BENCH_<name>.json. Not thread-safe; a bench
/// binary drives it from main().
class Harness {
 public:
  explicit Harness(std::string benchName,
                   HarnessConfig config = configFromEnv());

  /// Runs `fn` config.warmup times untimed, then config.repeats times
  /// timed, recording wall seconds and a counter snapshot per timed run.
  /// Metrics collection is force-enabled around the case (and the prior
  /// enabled state restored) so counter snapshots are populated even
  /// without MSC_METRICS=1. Returns the aggregated result (also retained
  /// for writeJson).
  const CaseResult& run(const std::string& caseName,
                        const std::function<void()>& fn);

  /// Attaches per-phase duration samples (seconds) to the most recently
  /// run case, aggregated to {count, median, p99} and rendered as a
  /// "phases" object in the JSON — the per-phase series
  /// tools/bench_diff.py gates separately from end-to-end latency. Serve
  /// benches collect these from response `usage.phases` blocks after the
  /// timed runs. Empty sample sets are ignored; throws std::logic_error
  /// when no case has run yet.
  void addPhaseSamples(const std::string& phaseName,
                       const std::vector<double>& seconds);

  const std::string& name() const noexcept { return name_; }
  const HarnessConfig& config() const noexcept { return config_; }
  const std::vector<CaseResult>& results() const noexcept { return results_; }

  /// Renders the "msc.bench.v1" JSON document:
  ///   {
  ///     "schema": "msc.bench.v1",
  ///     "name": "micro_core",
  ///     "warmup": 1, "repeats": 5,
  ///     "cases": {
  ///       "greedy_k4": {"seconds": [...], "median": ..., "mean": ...,
  ///                     "stddev": ..., "min": ..., "max": ...,
  ///                     "p50": ..., "p99": ...,
  ///                     "phases": {"apsp": {"count": ..., "median": ...,
  ///                                         "p99": ...}},  // optional
  ///                     "runs": [{"seconds": ..., "counters": {...}}]}
  ///     }
  ///   }
  /// Non-finite numbers render as null (standard JSON, matching the
  /// metrics exporter).
  std::string toJson() const;

  /// Writes toJson() to eval::outputDir()/BENCH_<name>.json and returns the
  /// path. Throws std::runtime_error when the file cannot be opened.
  std::string writeJson() const;

 private:
  std::string name_;
  HarnessConfig config_;
  std::vector<CaseResult> results_;
};

}  // namespace msc::bench
