// Ablation — sandwich components (DESIGN.md §4): how often does each of
// the three greedy runs (on mu, sigma, nu) win the best-of-three, and how
// much does the sandwich gain over sigma-greedy alone? Justifies running
// all three passes instead of only greedy-on-sigma.
#include <iostream>
#include <map>
#include <vector>

#include "core/candidates.h"
#include "core/sandwich.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace msc;
  eval::printHeader(std::cout, "Ablation: sandwich component contributions",
                    "DESIGN.md ablation index");
  const int trials =
      util::scaledIters(static_cast<int>(util::envInt("MSC_TRIALS", 10)));
  std::cout << "trials per row: " << trials << '\n';

  util::TableWriter table({"dataset", "k", "win mu", "win sigma", "win nu",
                           "AA mean", "sigma-greedy mean", "uplift%"});

  for (const std::string dataset : {"RG", "Gowalla"}) {
    for (const int k : {4, 8}) {
      std::map<std::string, int> wins{{"mu", 0}, {"sigma", 0}, {"nu", 0}};
      util::RunningStats aaStat, sgStat;
      for (int trial = 0; trial < trials; ++trial) {
        const auto seed = static_cast<std::uint64_t>(1000 + trial);
        const eval::SpatialInstance spatial = [&] {
          if (dataset == "RG") {
            eval::RgSetup setup;
            setup.nodes = 100;
            setup.pairs = 40;
            setup.failureThreshold = 0.14;
            setup.seed = seed;
            return eval::makeRgInstance(setup);
          }
          eval::GowallaSetup setup;
          setup.pairs = 40;
          setup.failureThreshold = 0.27;
          setup.seed = seed;
          return eval::makeGowallaInstance(setup);
        }();
        const auto cands = core::CandidateSet::allPairs(
            spatial.instance.graph().nodeCount());
        const auto aa =
            core::sandwichApproximation(spatial.instance, cands, {.k = k});
        ++wins[aa.winner];
        aaStat.push(aa.sigma);
        sgStat.push(aa.sigmaOfSigma);
      }
      const double uplift =
          sgStat.mean() > 0.0
              ? 100.0 * (aaStat.mean() - sgStat.mean()) / sgStat.mean()
              : 0.0;
      table.addRow({dataset, std::to_string(k), std::to_string(wins["mu"]),
                    std::to_string(wins["sigma"]), std::to_string(wins["nu"]),
                    util::formatFixed(aaStat.mean(), 2),
                    util::formatFixed(sgStat.mean(), 2),
                    util::formatFixed(uplift, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nreading: sigma-greedy usually wins outright (AA == "
               "sigma-greedy), but the bound runs occasionally rescue "
               "placements where greedy-on-sigma stalls — and they are what "
               "provides the approximation guarantee.\n";
  return 0;
}
