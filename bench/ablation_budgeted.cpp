// Ablation — budgeted placement (DESIGN.md §4 extension): when shortcut
// costs scale with geographic length (satellite hop vs short UAV relay),
// how do the density rule, the uniform rule, and their max compare, and
// what does cost-awareness buy over pretending costs are uniform?
#include <iostream>
#include <vector>

#include "core/budgeted.h"
#include "core/candidates.h"
#include "core/greedy.h"
#include "core/sigma.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace msc;
  eval::printHeader(std::cout, "Ablation: budgeted (cost-aware) placement",
                    "DESIGN.md ablation index");
  const int trials =
      util::scaledIters(static_cast<int>(util::envInt("MSC_TRIALS", 5)));
  std::cout << "RG n=100 m=60 p_t=0.14; cost = 0.5 + 2.0 * link length; "
            << trials << " trials per row\n\n";

  util::TableWriter table({"budget", "density", "uniform", "max(both)",
                           "|F| density", "|F| uniform"});
  for (const double budget : {2.0, 4.0, 8.0, 12.0}) {
    util::RunningStats density, uniform, best, sizeD, sizeU;
    for (int trial = 0; trial < trials; ++trial) {
      eval::RgSetup setup;
      setup.nodes = 100;
      setup.pairs = 60;
      setup.failureThreshold = 0.14;
      setup.seed = static_cast<std::uint64_t>(trial + 1);
      const auto spatial = eval::makeRgInstance(setup);
      const auto cands =
          core::CandidateSet::allPairs(spatial.instance.graph().nodeCount());
      // Unit-square coordinates: a cross-square link costs ~0.5 + 2*1.4.
      const auto cost = core::distanceCost(spatial.positions, 0.5, 2.0);
      core::SigmaEvaluator sigma(spatial.instance);
      const auto res = core::budgetedGreedy(sigma, cands, cost, budget, {});
      density.push(res.densityValue);
      uniform.push(res.uniformValue);
      best.push(res.value);
      sizeD.push(static_cast<double>(res.densityPlacement.size()));
      sizeU.push(static_cast<double>(res.uniformPlacement.size()));
    }
    table.addRow({util::formatFixed(budget, 1),
                  util::formatFixed(density.mean(), 2),
                  util::formatFixed(uniform.mean(), 2),
                  util::formatFixed(best.mean(), 2),
                  util::formatFixed(sizeD.mean(), 1),
                  util::formatFixed(sizeU.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nreading: with length-proportional costs the density rule "
               "buys more short links and usually wins at tight budgets; "
               "the uniform rule catches up when the budget is loose. "
               "max(both) is the deployed policy.\n";
  return 0;
}
