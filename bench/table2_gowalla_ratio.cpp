// Table II — data-dependent ratio sigma(F_nu)/nu(F_nu) on the Gowalla-style
// network (paper §VII-B; n = 134, 63 important pairs).
//
// The paper reports ratios above 0.2 in most cells (max ~0.57), larger than
// on RG (clusters make the coverage bound tighter), again decreasing in k.
#include <iostream>
#include <vector>

#include "core/candidates.h"
#include "core/sandwich.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace msc;

  eval::printHeader(std::cout,
                    "Table II: sigma(F_nu)/nu(F_nu) on Gowalla-style network",
                    "ICDCS'19 Table II (n=134, m=63)");

  const std::vector<double> thresholds{0.23, 0.27, 0.31, 0.35};
  const std::vector<int> budgets{2, 4, 6, 8, 10};
  const auto seed = static_cast<std::uint64_t>(util::envInt("MSC_SEED", 9));

  const int trials =
      util::scaledIters(static_cast<int>(util::envInt("MSC_TRIALS", 5)));
  std::cout << "mean ratio over " << trials << " seeded instances per cell\n";

  std::vector<std::string> header{"k \\ p_t"};
  for (const double pt : thresholds) header.push_back(util::formatFixed(pt, 2));
  util::TableWriter table(header);

  std::vector<std::vector<eval::SpatialInstance>> instances(thresholds.size());
  for (std::size_t c = 0; c < thresholds.size(); ++c) {
    for (int trial = 0; trial < trials; ++trial) {
      eval::GowallaSetup setup;
      setup.pairs = 63;
      setup.failureThreshold = thresholds[c];
      setup.seed = seed + static_cast<std::uint64_t>(trial);
      instances[c].push_back(eval::makeGowallaInstance(setup));
    }
    std::cout << "p_t=" << thresholds[c] << "  "
              << eval::describeInstance(instances[c].front().instance) << '\n';
  }

  for (const int k : budgets) {
    std::vector<std::string> row{std::to_string(k)};
    for (const auto& column : instances) {
      util::RunningStats stat;
      for (const auto& spatial : column) {
        const auto cands = core::CandidateSet::allPairs(
            spatial.instance.graph().nodeCount());
        const auto aa =
            core::sandwichApproximation(spatial.instance, cands, {.k = k});
        stat.push(aa.dataDependentRatio().value_or(0.0));
      }
      row.push_back(util::formatFixed(stat.mean(), 4));
    }
    table.addRow(std::move(row));
  }

  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nexpected shape: ratios larger than Table I's (clustered "
               "network tightens nu), growing with p_t, decreasing or "
               "plateauing in k\n";
  return 0;
}
