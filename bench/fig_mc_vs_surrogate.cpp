// MC-optimal vs surrogate-optimal placements (ISSUE 9 / ROADMAP "beyond
// the paper").
//
// The paper's objective counts a pair as maintained iff its single best
// path meets p_t; the true multi-path reliability R(u, w) is at least
// that and often strictly higher (parallel paths). This bench quantifies
// the surrogate gap: on RG and Gowalla instances it solves with
//   * AA (core::sandwichApproximation) — the paper's surrogate optimum,
//   * mc::sandwich — best-of-three under the sampled multi-path σ̂,
// and scores BOTH placements under the same WorldSet (identical worlds,
// identical seed — common random numbers), so the reported gap is a
// placement property, not sampling noise. Both solvers search the same
// pair-node candidate universe (the serve layer's pair-centric
// restriction; shortcuts between non-pair nodes help neither objective
// here and the restriction keeps the MC scan affordable).
//
// Two findings, one per topology family:
//   * RG: the surrogate badly UNDERCOUNTS — dense geometric graphs have
//     so many parallel paths that every pair is maintained under true
//     multi-path reliability with any k=2 placement (AA sp-sigma 4-9 of
//     17 vs 17/17 under σ̂). No placement gap is possible: the instance
//     saturates.
//   * Gowalla: clustered topology leaves real headroom and MC placement
//     strictly beats the surrogate's placement under σ̂.
//
// Self-failing: mc::sandwich can never score below AA under σ̂ (AA's
// placement is one of its contenders), and the run FAILS unless at least
// one instance shows a strictly positive gap — the acceptance criterion
// that MC solving is worth a subsystem.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/candidates.h"
#include "core/sandwich.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "harness.h"
#include "mc/reliability.h"
#include "mc/solver.h"
#include "mc/world_sampler.h"
#include "util/env.h"
#include "util/table.h"

namespace {

struct Config {
  std::string dataset;  // "RG" or "Gowalla"
  double pt = 0.14;
  int k = 6;
  std::uint64_t seed = 1;
};

struct Row {
  Config cfg;
  double sigmaSurrogateSp = 0.0;   // AA under its own shortest-path sigma
  double sigmaHatSurrogate = 0.0;  // AA placement under sampled σ̂
  double sigmaHatMc = 0.0;         // mc::sandwich under sampled σ̂
  int uncertain = 0;
  int pairs = 0;
  std::string winner;
};

msc::eval::SpatialInstance makeInstance(const Config& cfg) {
  if (cfg.dataset == "RG") {
    msc::eval::RgSetup setup;
    setup.failureThreshold = cfg.pt;
    setup.seed = cfg.seed;
    return msc::eval::makeRgInstance(setup);
  }
  msc::eval::GowallaSetup setup;
  // The Table II default of 63 pairs makes the pair-node candidate
  // universe ~1900 shortcuts — minutes of MC gain scans on one core.
  // 25 pairs keeps the clustered-topology character at CI cost.
  setup.pairs = 25;
  setup.failureThreshold = cfg.pt;
  setup.seed = cfg.seed;
  return msc::eval::makeGowallaInstance(setup);
}

/// Shortcut universe over pair nodes only (see header comment).
msc::core::CandidateSet pairNodeCandidates(const msc::core::Instance& inst) {
  const auto& nodes = inst.pairNodes();
  msc::core::ShortcutList list;
  list.reserve(nodes.size() * (nodes.size() - 1) / 2);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      list.push_back(msc::core::Shortcut::make(nodes[i], nodes[j]));
    }
  }
  return msc::core::CandidateSet(std::move(list));
}

}  // namespace

int main() {
  using namespace msc;
  eval::printHeader(std::cout, "MC multi-path vs surrogate placement",
                    "possible-worlds solver (src/mc) vs paper AA");

  const int worlds = std::max(
      256, util::scaledIters(static_cast<int>(
               util::envInt("MSC_MC_WORLDS", 1024))));
  std::cout << "sampled worlds per instance: " << worlds << "\n";

  const std::vector<Config> configs = {
      {"RG", 0.14, 2, 1},
      {"RG", 0.20, 2, 1},
      {"Gowalla", 0.27, 4, 9},
  };

  // Both solvers are deterministic at fixed seed, so repeated timed runs
  // only measure latency noise on a quality gate — default to a single
  // timed run (MSC_BENCH_REPEATS still overrides).
  bench::Harness h("mc_vs_surrogate",
                   bench::configFromEnv({.warmup = 0, .repeats = 1}));
  util::TableWriter table({"dataset", "p_t", "k", "AA sp-sigma",
                           "AA mc-sigma", "MC mc-sigma", "gap", "uncertain",
                           "winner", "pairs"});
  int positiveGaps = 0;
  for (const Config& cfg : configs) {
    const auto spatial = makeInstance(cfg);
    const auto& inst = spatial.instance;
    const auto cands = pairNodeCandidates(inst);
    const core::SolveOptions options{
        .k = cfg.k, .threads = 0, .seed = cfg.seed};
    const mc::McOptions mcOptions{.worlds = worlds};
    const std::string tag =
        cfg.dataset + "_pt" + util::formatFixed(cfg.pt, 2);

    Row row;
    row.cfg = cfg;
    core::SandwichResult aa;
    h.run(tag + "_surrogate_aa",
          [&] { aa = core::sandwichApproximation(inst, cands, options); });
    mc::McSolveResult mcRes;
    h.run(tag + "_mc_sandwich", [&] {
      mcRes = mc::sandwich(inst, cands, options, mcOptions);
    });

    // Score AA's placement on the SAME worlds the MC solver optimized
    // against (same seed, same W -> identical planes).
    const mc::WorldSet ws(inst.graph(),
                          {.worlds = worlds, .seed = options.seed});
    mc::ReliabilityEvaluator hard(inst, ws);
    row.sigmaSurrogateSp = aa.sigma;
    row.sigmaHatSurrogate = hard.evaluate(aa.placement);
    row.sigmaHatMc = mcRes.sigmaHat;
    row.uncertain = mcRes.uncertainPairs;
    row.pairs = inst.pairCount();
    row.winner = mcRes.winner;

    const double gap = row.sigmaHatMc - row.sigmaHatSurrogate;
    if (gap > 0.0) ++positiveGaps;
    if (gap < 0.0) {
      std::cout << "FAIL: mc::sandwich scored below the surrogate "
                   "placement on "
                << tag << " (" << row.sigmaHatMc << " < "
                << row.sigmaHatSurrogate
                << ") — impossible under shared worlds\n";
      return 1;
    }
    table.addRow({cfg.dataset, util::formatFixed(cfg.pt, 2),
                  std::to_string(cfg.k),
                  util::formatFixed(row.sigmaSurrogateSp, 0),
                  util::formatFixed(row.sigmaHatSurrogate, 0),
                  util::formatFixed(row.sigmaHatMc, 0),
                  util::formatFixed(gap, 0), std::to_string(row.uncertain),
                  row.winner, std::to_string(row.pairs)});
    std::cerr << "  [mc_vs_surrogate] " << tag << " done\n";
  }
  table.print(std::cout);
  std::cout << "\ninstances where MC strictly beats the surrogate placement "
               "under multi-path σ̂: "
            << positiveGaps << "/" << configs.size() << "\n";
  std::cout << "bench json: " << h.writeJson() << '\n';

  if (positiveGaps == 0) {
    std::cout << "FAIL: expected a strictly positive surrogate gap on at "
                 "least one instance\n";
    return 1;
  }
  return 0;
}
