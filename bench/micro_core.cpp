// Microbenchmarks (google-benchmark) for the evaluation hot paths:
// sigma strategies (matrix vs overlay vs rebuild), the zero-edge
// relaxation, per-candidate marginal gains, APSP, and one greedy round.
// These back DESIGN.md's "evaluator strategy" ablation: which exact sigma
// strategy wins at which (n, m, |F|) regime.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "core/bounds.h"
#include "core/candidates.h"
#include "core/greedy.h"
#include "core/sigma.h"
#include "eval/experiment.h"
#include "graph/apsp.h"
#include "graph/distance_oracle.h"
#include "graph/shortcut_distance.h"
#include "harness.h"
#include "obs/metrics.h"
#include "util/env.h"
#include "util/rng.h"

namespace {

using msc::core::CandidateSet;
using msc::core::Instance;
using msc::core::Shortcut;
using msc::core::ShortcutList;
using msc::core::SigmaEvaluator;

msc::eval::SpatialInstance makeRg(int n, int m) {
  msc::eval::RgSetup setup;
  setup.nodes = n;
  setup.radius = n >= 100 ? 0.15 : 0.25;
  setup.pairs = m;
  setup.failureThreshold = 0.14;
  setup.seed = 1;
  return msc::eval::makeRgInstance(setup);
}

ShortcutList somePlacement(int n, int size) {
  msc::util::Rng rng(99);
  ShortcutList f;
  while (static_cast<int>(f.size()) < size) {
    const auto a = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    const auto b = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    if (a == b) continue;
    const auto s = Shortcut::make(a, b);
    if (!msc::core::contains(f, s)) f.push_back(s);
  }
  return f;
}

void BM_Apsp(benchmark::State& state) {
  const auto spatial = makeRg(static_cast<int>(state.range(0)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        msc::graph::allPairsDistances(spatial.instance.graph()));
  }
}
BENCHMARK(BM_Apsp)->Arg(50)->Arg(100)->Arg(150);

void BM_ApplyZeroEdge(benchmark::State& state) {
  const auto spatial = makeRg(static_cast<int>(state.range(0)), 10);
  const auto& base = spatial.instance.distanceOracle().materialize();
  for (auto _ : state) {
    auto d = base;
    msc::graph::applyZeroEdge(d, 0, spatial.instance.graph().nodeCount() - 1);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_ApplyZeroEdge)->Arg(50)->Arg(100)->Arg(150);

// Point-query cost of the two oracle backends on the same graph: the
// dense matrix lookup is the floor, the pair-centric ALT/cached-row query
// is what replaces it past the auto threshold. Queries cycle through a
// fixed endpoint sample so the pair-centric row cache behaves as it does
// mid-solve (hot rows for repeated sources).
void BM_MatrixLookup(benchmark::State& state) {
  const auto spatial = makeRg(static_cast<int>(state.range(0)), 10);
  const auto oracle = msc::graph::DenseMatrixOracle::build(
      spatial.instance.graph(), /*threads=*/1);
  const int n = spatial.instance.graph().nodeCount();
  int x = 0;
  for (auto _ : state) {
    x = (x + 17) % n;
    benchmark::DoNotOptimize(oracle->distance(x, (x * 31 + 7) % n));
  }
}
BENCHMARK(BM_MatrixLookup)->Arg(100)->Arg(150);

void BM_OracleQuery(benchmark::State& state) {
  const auto spatial = makeRg(static_cast<int>(state.range(0)), 10);
  const auto graph =
      std::make_shared<const msc::graph::Graph>(spatial.instance.graph());
  const msc::graph::PairCentricOracle oracle(
      graph, msc::graph::PairCentricOracle::Config{8, 1});
  const int n = graph->nodeCount();
  int x = 0;
  for (auto _ : state) {
    x = (x + 17) % n;
    benchmark::DoNotOptimize(oracle.distance(x, (x * 31 + 7) % n));
  }
}
BENCHMARK(BM_OracleQuery)->Arg(100)->Arg(150);

void BM_SigmaByRows(benchmark::State& state) {
  const auto spatial = makeRg(100, static_cast<int>(state.range(0)));
  SigmaEvaluator eval(spatial.instance);
  const auto f = somePlacement(100, static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.valueByRows(f));
  }
}
BENCHMARK(BM_SigmaByRows)
    ->Args({17, 4})
    ->Args({80, 4})
    ->Args({80, 10});

void BM_SigmaByOverlay(benchmark::State& state) {
  const auto spatial = makeRg(100, static_cast<int>(state.range(0)));
  SigmaEvaluator eval(spatial.instance);
  const auto f = somePlacement(100, static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.valueByOverlay(f));
  }
}
BENCHMARK(BM_SigmaByOverlay)
    ->Args({17, 4})
    ->Args({80, 4})
    ->Args({80, 10});

void BM_SigmaByRebuild(benchmark::State& state) {
  const auto spatial = makeRg(100, static_cast<int>(state.range(0)));
  SigmaEvaluator eval(spatial.instance);
  const auto f = somePlacement(100, static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.valueByRebuild(f));
  }
}
BENCHMARK(BM_SigmaByRebuild)->Args({17, 4})->Args({80, 4});

void BM_SigmaGainScan(benchmark::State& state) {
  // One full greedy-round scan over all candidates.
  const auto spatial = makeRg(100, 80);
  SigmaEvaluator eval(spatial.instance);
  const auto cands = CandidateSet::allPairs(100);
  eval.reset();
  for (auto _ : state) {
    double best = 0.0;
    for (std::size_t c = 0; c < cands.size(); ++c) {
      best = std::max(best, eval.gainIfAdd(cands[c]));
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_SigmaGainScan);

void BM_MuConstruction(benchmark::State& state) {
  const auto spatial = makeRg(100, 80);
  const auto cands = CandidateSet::allPairs(100);
  for (auto _ : state) {
    msc::core::MuEvaluator mu(spatial.instance, cands);
    benchmark::DoNotOptimize(mu.value({}));
  }
}
BENCHMARK(BM_MuConstruction);

void BM_GreedyFullRun(benchmark::State& state) {
  const auto spatial = makeRg(100, 80);
  const auto cands = CandidateSet::allPairs(100);
  for (auto _ : state) {
    SigmaEvaluator eval(spatial.instance);
    benchmark::DoNotOptimize(msc::core::greedyMaximize(
        eval, cands,
        msc::core::SolveOptions{.k = static_cast<int>(state.range(0))}));
  }
}
BENCHMARK(BM_GreedyFullRun)->Arg(4)->Arg(10);

// Instrumentation overhead check: the same greedy run with the metrics
// registry force-enabled (range(1) == 1) vs force-disabled (range(1) == 0).
// The acceptance bar is: disabled instrumentation stays within 2% of the
// pre-instrumentation baseline, i.e. BM_GreedyInstrumented/4/0 tracks
// BM_GreedyFullRun/4.
void BM_GreedyInstrumented(benchmark::State& state) {
  const auto spatial = makeRg(100, 80);
  const auto cands = CandidateSet::allPairs(100);
  const bool wasEnabled = msc::obs::enabled();
  msc::obs::setEnabled(state.range(1) != 0);
  for (auto _ : state) {
    SigmaEvaluator eval(spatial.instance);
    benchmark::DoNotOptimize(msc::core::greedyMaximize(
        eval, cands,
        msc::core::SolveOptions{.k = static_cast<int>(state.range(0))}));
  }
  msc::obs::setEnabled(wasEnabled);
  msc::obs::resetAll();
}
BENCHMARK(BM_GreedyInstrumented)->Args({4, 0})->Args({4, 1});

// --------------------------------------------------- parallel scaling ----
// The acceptance bar for the parallel layer (ALGORITHMS.md §10): >= 2x on
// APSP and on a greedy gain-scan round at 8 threads on n >= 2000 RG graphs
// (needs an 8-core machine; on fewer cores the 8-thread rows oversubscribe
// and only show whatever parallelism the hardware has). Compare the
// threads=1 and threads=8 rows of each benchmark.

const Instance& bigRgInstance() {
  // n = 2000, radius 0.05, 200 pairs — built once and shared across
  // benchmark registrations (construction itself runs a full APSP).
  static const msc::eval::SpatialInstance spatial = [] {
    msc::eval::RgSetup setup;
    setup.nodes = 2000;
    setup.radius = 0.05;
    setup.pairs = 200;
    setup.failureThreshold = 0.14;
    setup.seed = 1;
    return msc::eval::makeRgInstance(setup);
  }();
  return spatial.instance;
}

void BM_ApspParallel(benchmark::State& state) {
  const auto& inst = bigRgInstance();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        msc::graph::allPairsDistances(inst.graph(), threads));
  }
}
BENCHMARK(BM_ApspParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_GreedyGainScanParallel(benchmark::State& state) {
  // One greedy round (k = 1) == one full candidate gain scan plus one add;
  // the scan over ~2M candidates dominates.
  const auto& inst = bigRgInstance();
  const auto cands = CandidateSet::allPairs(inst.graph().nodeCount());
  const int threads = static_cast<int>(state.range(0));
  SigmaEvaluator eval(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(msc::core::greedyMaximize(
        eval, cands, msc::core::SolveOptions{.k = 1, .threads = threads}));
  }
}
BENCHMARK(BM_GreedyGainScanParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------ regression harness ----
// A small harness-backed suite alongside the google-benchmark cases: the
// same hot paths, timed as warmup+repeats and exported to
// out/BENCH_micro_core.json for tools/bench_diff.py to compare across
// commits (CI perf-smoke job). Skippable with MSC_BENCH_JSON=0.

void runRegressionHarness() {
  if (!msc::util::envBool("MSC_BENCH_JSON", true)) return;
  msc::bench::Harness harness("micro_core");

  {
    const auto spatial = makeRg(150, 10);
    harness.run("apsp_n150", [&] {
      benchmark::DoNotOptimize(
          msc::graph::allPairsDistances(spatial.instance.graph()));
    });
  }
  {
    // Point-query cost of both oracle backends, gated by bench_diff.py
    // like every other harness case (CI perf-smoke self-diff).
    const auto spatial = makeRg(150, 10);
    const auto dense = msc::graph::DenseMatrixOracle::build(
        spatial.instance.graph(), /*threads=*/1);
    const auto graph =
        std::make_shared<const msc::graph::Graph>(spatial.instance.graph());
    const msc::graph::PairCentricOracle pc(
        graph, msc::graph::PairCentricOracle::Config{8, 1});
    const int n = graph->nodeCount();
    harness.run("matrix_lookup", [&] {
      double sum = 0.0;
      for (int x = 0; x < n; x += 7) {
        sum += dense->distance(x, (x * 31 + 7) % n);
      }
      benchmark::DoNotOptimize(sum);
    });
    harness.run("oracle_query", [&] {
      double sum = 0.0;
      for (int x = 0; x < n; x += 7) {
        sum += pc.distance(x, (x * 31 + 7) % n);
      }
      benchmark::DoNotOptimize(sum);
    });
  }
  {
    const auto spatial = makeRg(100, 80);
    const auto cands = CandidateSet::allPairs(100);
    harness.run("greedy_k4", [&] {
      SigmaEvaluator eval(spatial.instance);
      benchmark::DoNotOptimize(msc::core::greedyMaximize(
          eval, cands, msc::core::SolveOptions{.k = 4}));
    });
    harness.run("sigma_gain_scan", [&] {
      SigmaEvaluator eval(spatial.instance);
      eval.reset();
      double best = 0.0;
      for (std::size_t c = 0; c < cands.size(); ++c) {
        best = std::max(best, eval.gainIfAdd(cands[c]));
      }
      benchmark::DoNotOptimize(best);
    });
  }

  std::cout << "bench json: " << harness.writeJson() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  runRegressionHarness();
  return 0;
}
