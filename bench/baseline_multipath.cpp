// Baseline — multipath routing vs shortcut placement (paper §I).
//
// The introduction motivates MSC by arguing that multipath routing alone
// cannot keep important pairs reliable: each path still fails too often.
// This bench quantifies that on the library's instances: for each pair,
// compare the failure probability of
//   * the single most reliable path                (1 - e^-L1),
//   * the optimal pair of edge-disjoint paths      ((1-e^-L1')(1-e^-L2')),
//     computed with Bhandari's algorithm (src/graph/disjoint_paths), and
//   * the most reliable path after placing k shortcut edges with AA,
// and count how many pairs meet the p_t requirement under each strategy.
// A second section estimates, by Monte-Carlo over sampled link states,
// the delivery rate of sending j redundant copies along the j shortest
// (Yen) routes — which are generally NOT disjoint, so their failures are
// correlated and no closed form applies.
#include <cmath>
#include <iostream>
#include <array>
#include <map>

#include "core/candidates.h"
#include "core/sandwich.h"
#include "core/sigma.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "graph/disjoint_paths.h"
#include "graph/k_shortest.h"
#include "sim/link_state.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "wireless/link_model.h"

namespace {

double pathFailure(double length) {
  return msc::wireless::lengthToFailure(length);
}

void runDataset(const std::string& dataset, const std::vector<double>& pts,
                int k, std::uint64_t seed) {
  std::cout << "\n=== dataset: " << dataset << " (k=" << k
            << " for the shortcut strategy) ===\n";
  msc::util::TableWriter table({"p_t", "single path", "2-disjoint multipath",
                                "AA shortcuts", "m"});
  for (const double pt : pts) {
    const msc::eval::SpatialInstance spatial = [&] {
      if (dataset == "RG") {
        msc::eval::RgSetup setup;
        setup.nodes = 100;
        setup.pairs = 40;
        setup.failureThreshold = pt;
        setup.seed = seed;
        return msc::eval::makeRgInstance(setup);
      }
      msc::eval::GowallaSetup setup;
      setup.pairs = 40;
      setup.failureThreshold = pt;
      setup.seed = seed;
      return msc::eval::makeGowallaInstance(setup);
    }();
    const auto& inst = spatial.instance;

    // Pairs are sampled unsatisfied, so "single path" is 0 by
    // construction — included to make the comparison explicit.
    int singleOk = 0;
    int multipathOk = 0;
    for (const auto& p : inst.pairs()) {
      if (pathFailure(inst.baseDistance(p)) <= pt) ++singleOk;
      const auto dp =
          msc::graph::twoEdgeDisjointPaths(inst.graph(), p.u, p.w);
      double failure = 1.0;
      if (dp.hasFirst()) failure = pathFailure(dp.firstLength);
      if (dp.hasTwo()) {
        // Delivered if EITHER disjoint copy survives.
        failure = pathFailure(dp.firstLength) * pathFailure(dp.secondLength);
      }
      if (failure <= pt) ++multipathOk;
    }

    const auto cands =
        msc::core::CandidateSet::allPairs(inst.graph().nodeCount());
    const auto aa = msc::core::sandwichApproximation(inst, cands, {.k = k});

    table.addRow({msc::util::formatFixed(pt, 2), std::to_string(singleOk),
                  std::to_string(multipathOk),
                  msc::util::formatFixed(aa.sigma, 0),
                  std::to_string(inst.pairCount())});
  }
  table.print(std::cout);
}

// Monte-Carlo delivery of j redundant copies along the j shortest loopless
// routes (correlated failures — copies share links).
void runRedundantCopies(const msc::eval::SpatialInstance& spatial, double pt,
                        int mcTrials, std::uint64_t seed) {
  const auto& inst = spatial.instance;
  const auto& g = inst.graph();

  // Edge index per normalized node pair (min-length edge).
  std::map<std::pair<int, int>, std::size_t> edgeOf;
  {
    const auto edges = g.edges();
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const auto key = std::minmax(edges[i].u, edges[i].v);
      const auto it = edgeOf.find({key.first, key.second});
      if (it == edgeOf.end() ||
          edges[i].length < edges[it->second].length) {
        edgeOf[{key.first, key.second}] = i;
      }
    }
  }

  constexpr int kMaxCopies = 3;
  // Per pair, per route: edge indices.
  std::vector<std::vector<std::vector<std::size_t>>> pairRoutes;
  for (const auto& p : inst.pairs()) {
    const auto paths = msc::graph::kShortestPaths(g, p.u, p.w, kMaxCopies);
    std::vector<std::vector<std::size_t>> routes;
    for (const auto& path : paths) {
      std::vector<std::size_t> idx;
      for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
        const auto key = std::minmax(path.nodes[i], path.nodes[i + 1]);
        idx.push_back(edgeOf.at({key.first, key.second}));
      }
      routes.push_back(std::move(idx));
    }
    pairRoutes.push_back(std::move(routes));
  }

  // MC: a pair counts as "meeting p_t" when its delivery rate over the
  // trials is >= 1 - p_t.
  std::vector<std::array<int, kMaxCopies>> delivered(
      pairRoutes.size(), std::array<int, kMaxCopies>{});
  const msc::mc::WorldSet worlds(g,
                                 {.worlds = mcTrials, .seed = seed ^ 0x77aaULL});
  for (int trial = 0; trial < mcTrials; ++trial) {
    const auto real = msc::sim::realizationOf(worlds, trial);
    for (std::size_t r = 0; r < pairRoutes.size(); ++r) {
      bool anyAlive = false;
      for (std::size_t j = 0; j < pairRoutes[r].size(); ++j) {
        if (!anyAlive) {
          bool alive = true;
          for (const std::size_t e : pairRoutes[r][j]) {
            if (!real.up[e]) {
              alive = false;
              break;
            }
          }
          anyAlive = alive;
        }
        if (anyAlive) ++delivered[r][j];
      }
    }
  }

  msc::util::TableWriter table(
      {"copies j", "pairs meeting 1-p_t", "mean delivery"});
  for (int j = 0; j < kMaxCopies; ++j) {
    int ok = 0;
    msc::util::RunningStats mean;
    for (std::size_t r = 0; r < delivered.size(); ++r) {
      const double rate = static_cast<double>(delivered[r][j]) / mcTrials;
      mean.push(rate);
      if (rate >= 1.0 - pt) ++ok;
    }
    table.addRow({std::to_string(j + 1), std::to_string(ok),
                  msc::util::formatFixed(mean.mean(), 3)});
  }
  std::cout << "\n-- redundant copies along the j shortest routes "
               "(Monte-Carlo, "
            << mcTrials << " trials, p_t=" << pt << ") --\n";
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace msc;
  eval::printHeader(std::cout,
                    "Baseline: multipath routing vs shortcut placement",
                    "paper §I motivation");
  const int k = static_cast<int>(util::envInt("MSC_K", 6));

  runDataset("RG", {0.08, 0.11, 0.14, 0.18}, k, 1);
  runDataset("Gowalla", {0.23, 0.27, 0.31, 0.35}, k, 9);

  // Redundant non-disjoint copies (correlated failures) on one instance of
  // each dataset.
  const int mcTrials = util::scaledIters(
      static_cast<int>(util::envInt("MSC_MC_TRIALS", 3000)));
  {
    eval::RgSetup setup;
    setup.nodes = 100;
    setup.pairs = 40;
    setup.failureThreshold = 0.14;
    setup.seed = 1;
    runRedundantCopies(eval::makeRgInstance(setup), 0.14, mcTrials, 1);
  }
  {
    eval::GowallaSetup setup;
    setup.pairs = 40;
    setup.failureThreshold = 0.27;
    setup.seed = 9;
    runRedundantCopies(eval::makeGowallaInstance(setup), 0.27, mcTrials, 9);
  }

  std::cout << "\nexpected: on dense geometric graphs multipath rescues "
               "marginal pairs (many disjoint detours exist) but doubles "
               "per-pair transmissions — the interference cost §I points "
               "out; on clustered networks (Gowalla) both copies cross the "
               "same unreliable inter-cluster gap and multipath collapses "
               "while k shortcuts maintain nearly all pairs\n";
  return 0;
}
