// Fig 3 — AA vs EA vs AEA: maintained connections vs budget k under
// several thresholds p_t (paper §VII-D).
//
//   (a) RG graph, n = 100, m = 80
//   (b) Gowalla-style network, n = 134, m = 76
// Parameters follow the paper: r = 500 iterations for EA and AEA, AEA
// population l = 10, delta = 0.05.
//
// Expected shape: values increase with k and p_t; AEA >= AA >> EA.
#include <iostream>
#include <vector>

#include "core/aea.h"
#include "core/candidates.h"
#include "core/ea.h"
#include "core/sandwich.h"
#include "core/sigma.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "harness.h"
#include "util/env.h"
#include "util/table.h"

namespace {

void runDataset(const std::string& dataset,
                const std::vector<double>& thresholds,
                const std::vector<int>& budgets, int iterations,
                std::uint64_t seed) {
  std::cout << "\n=== Fig 3(" << (dataset == "RG" ? 'a' : 'b')
            << "): " << dataset << " ===\n";
  msc::util::TableWriter table({"p_t", "k", "AA", "EA", "AEA", "m"});
  for (const double pt : thresholds) {
    const msc::eval::SpatialInstance spatial = [&] {
      if (dataset == "RG") {
        msc::eval::RgSetup setup;
        setup.nodes = 100;
        setup.pairs = 80;
        setup.failureThreshold = pt;
        setup.seed = seed;
        return msc::eval::makeRgInstance(setup);
      }
      msc::eval::GowallaSetup setup;
      setup.pairs = 76;
      setup.failureThreshold = pt;
      setup.seed = seed;
      return msc::eval::makeGowallaInstance(setup);
    }();
    const auto& inst = spatial.instance;
    const auto cands =
        msc::core::CandidateSet::allPairs(inst.graph().nodeCount());

    for (const int k : budgets) {
      const auto aa = msc::core::sandwichApproximation(inst, cands, {.k = k});

      msc::core::SigmaEvaluator sigma(inst);
      msc::core::EaConfig eaCfg;
      eaCfg.iterations = iterations;
      eaCfg.seed = seed + static_cast<std::uint64_t>(k);
      const auto ea =
          msc::core::evolutionaryAlgorithm(sigma, cands, {.k = k, .seed = eaCfg.seed}, eaCfg);

      msc::core::AeaConfig aeaCfg;
      aeaCfg.iterations = iterations;
      aeaCfg.populationSize = 10;
      aeaCfg.delta = 0.05;
      aeaCfg.seed = seed + static_cast<std::uint64_t>(k);
      const auto aea =
          msc::core::adaptiveEvolutionaryAlgorithm(sigma, cands, {.k = k, .seed = aeaCfg.seed}, aeaCfg);

      table.addRow({msc::util::formatFixed(pt, 2), std::to_string(k),
                    msc::util::formatFixed(aa.sigma, 0),
                    msc::util::formatFixed(ea.value, 0),
                    msc::util::formatFixed(aea.value, 0),
                    std::to_string(inst.pairCount())});
      std::cerr << "  [fig3 " << dataset << "] p_t=" << pt << " k=" << k
                << " done\n";
    }
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace msc;
  eval::printHeader(std::cout, "Fig 3: AA vs EA vs AEA",
                    "ICDCS'19 Fig. 3(a)/(b)");
  const int iterations = util::scaledIters(
      static_cast<int>(util::envInt("MSC_EA_ITERS", 500)));
  std::cout << "EA/AEA iterations r = " << iterations
            << " (paper: 500), AEA l=10 delta=0.05\n";

  // Each dataset is one harness case (full tables are deterministic, so a
  // single timed run per dataset suffices by default; MSC_BENCH_REPEATS
  // raises it). The export feeds the CI perf-smoke regression check.
  msc::bench::Harness harness(
      "fig3_compare_algorithms",
      msc::bench::configFromEnv({.warmup = 0, .repeats = 1}));
  harness.run("rg", [&] {
    runDataset("RG", {0.08, 0.11, 0.14}, {2, 4, 6, 8, 10}, iterations, 1);
  });
  harness.run("gowalla", [&] {
    runDataset("Gowalla", {0.23, 0.27, 0.31}, {2, 4, 6, 8, 10}, iterations, 9);
  });
  std::cout << "\nbench json: " << harness.writeJson() << '\n';

  std::cout << "\nexpected shape: connections increase with k and p_t; "
               "AEA >= AA, both clearly above EA\n";
  return 0;
}
