#!/usr/bin/env python3
"""Compare two msc.bench.v1 JSON files and fail on wall-time regressions.

Usage:
    bench_diff.py OLD.json NEW.json [--max-ratio 2.0]

For every case present in both files, compares the median wall seconds and
exits 1 when NEW exceeds OLD by more than --max-ratio. When BOTH files
carry tail-latency quantiles (the harness emits "p50"/"p99" since bench
schema msc.bench.v1 gained them; older files without them still diff
cleanly), p99 is gated with the same ratio and p50 is reported. Quantile
fields that are present but malformed (non-numeric, e.g. hand-edited) are
a hard error. Cases that appear in only one file produce a warning, not a
failure, so adding or retiring a case never blocks CI. Stdlib only — runs
anywhere python3 does.

Cases may also carry a "phases" object (serve benches aggregate the
per-request usage.phases attribution — apsp, round_scan, queue_wait, and
the oracle row-build attribution surfaced as "oracle_row_build"). Each
phase's median and p99 present in both files are gated with the same
ratio, independently of the end-to-end gate: an APSP or lazy-row-build
regression hiding inside a flat end-to-end median (e.g. offset by a
faster scan) still fails.

The default ratio is deliberately loose (2x): shared CI runners are noisy,
and the gate exists to catch accidental algorithmic blowups (a dropped
memo, an O(n) turned O(n^2)), not single-digit-percent drift. Tighten it
per invocation when comparing runs from the same quiet machine.
"""

import argparse
import json
import sys


def load_cases(path):
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as exc:
        sys.exit(f"error: {path}: cannot read: {exc.strerror}")
    except json.JSONDecodeError as exc:
        sys.exit(f"error: {path}: not valid JSON: {exc}")
    if doc.get("schema") != "msc.bench.v1":
        sys.exit(f"error: {path}: expected schema msc.bench.v1, "
                 f"got {doc.get('schema')!r}")
    if "repeats" not in doc:
        sys.exit(f"error: {path}: lacks a 'repeats' field — not a complete "
                 f"msc.bench.v1 document (truncated write?)")
    cases = doc.get("cases")
    if not isinstance(cases, dict):
        sys.exit(f"error: {path}: missing cases object")
    for case, entry in cases.items():
        if not isinstance(entry, dict):
            sys.exit(f"error: {path}: case {case!r} is not an object "
                     f"(hand-edited bench json?)")
        if "median" not in entry:
            sys.exit(f"error: {path}: case {case!r} lacks a 'median' field "
                     f"— not written by the bench harness (truncated or "
                     f"hand-edited json?)")
        for quantile in ("p50", "p99"):
            # Optional (pre-quantile harness output lacks them), but when
            # present they must be numeric or null (null = non-finite, the
            # harness's JSON mapping) — anything else is a hand-edit.
            if quantile in entry and entry[quantile] is not None and \
                    not isinstance(entry[quantile], (int, float)):
                sys.exit(f"error: {path}: case {case!r}: {quantile!r} must "
                         f"be a number or null, got "
                         f"{entry[quantile]!r} (hand-edited bench json?)")
        phases = entry.get("phases", {})
        if not isinstance(phases, dict):
            sys.exit(f"error: {path}: case {case!r}: 'phases' must be an "
                     f"object (hand-edited bench json?)")
        for phase, stats in phases.items():
            if not isinstance(stats, dict):
                sys.exit(f"error: {path}: case {case!r}: phase {phase!r} "
                         f"must be an object (hand-edited bench json?)")
            for field in ("median", "p99"):
                if field in stats and stats[field] is not None and \
                        not isinstance(stats[field], (int, float)):
                    sys.exit(f"error: {path}: case {case!r}: phase "
                             f"{phase!r}: {field!r} must be a number or "
                             f"null, got {stats[field]!r}")
    return doc.get("name", "?"), cases


def main():
    parser = argparse.ArgumentParser(
        description="Fail on bench wall-time regressions between two "
                    "msc.bench.v1 files.")
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when new median > ratio * old median "
                             "(default: %(default)s)")
    args = parser.parse_args()
    if args.max_ratio <= 0:
        parser.error("--max-ratio must be positive")

    old_name, old_cases = load_cases(args.old)
    new_name, new_cases = load_cases(args.new)
    if old_name != new_name:
        print(f"warning: comparing different benches "
              f"({old_name!r} vs {new_name!r})")

    failures = []
    for case in sorted(set(old_cases) | set(new_cases)):
        if case not in old_cases:
            print(f"warning: case {case!r} only in {args.new} (new case?)")
            continue
        if case not in new_cases:
            print(f"warning: case {case!r} only in {args.old} (removed?)")
            continue
        old_median = old_cases[case].get("median")
        new_median = new_cases[case].get("median")
        if not isinstance(old_median, (int, float)) or \
           not isinstance(new_median, (int, float)):
            print(f"warning: case {case!r}: median missing or null, skipped")
            continue
        if old_median <= 0:
            # Sub-resolution baseline: any finite new time would "regress";
            # report only, don't gate.
            print(f"ok?     {case}: old median {old_median:.6f}s is zero, "
                  f"new {new_median:.6f}s (not gated)")
            continue
        ratio = new_median / old_median
        verdict = "FAIL" if ratio > args.max_ratio else "ok"
        print(f"{verdict:7} {case}: {old_median:.6f}s -> {new_median:.6f}s "
              f"({ratio:.2f}x, limit {args.max_ratio:.2f}x)")
        if ratio > args.max_ratio:
            failures.append(case)

        # Tail-latency gate: only when both sides carry the quantile (mixed
        # old/new harness versions diff on median alone).
        old_p99 = old_cases[case].get("p99")
        new_p99 = new_cases[case].get("p99")
        if isinstance(old_p99, (int, float)) and \
                isinstance(new_p99, (int, float)) and old_p99 > 0:
            p99_ratio = new_p99 / old_p99
            p99_verdict = "FAIL" if p99_ratio > args.max_ratio else "ok"
            print(f"{p99_verdict:7} {case} [p99]: {old_p99:.6f}s -> "
                  f"{new_p99:.6f}s ({p99_ratio:.2f}x, "
                  f"limit {args.max_ratio:.2f}x)")
            if p99_ratio > args.max_ratio and case not in failures:
                failures.append(case)
        old_p50 = old_cases[case].get("p50")
        new_p50 = new_cases[case].get("p50")
        if isinstance(old_p50, (int, float)) and \
                isinstance(new_p50, (int, float)) and old_p50 > 0:
            # p50 ~= median (reported for context, the median line gates).
            print(f"        {case} [p50]: {old_p50:.6f}s -> {new_p50:.6f}s "
                  f"({new_p50 / old_p50:.2f}x, not gated)")

        # Per-phase gate: each phase present in both files is held to the
        # same ratio on both its median and p99, so e.g. an APSP or oracle
        # row-build blowup can't hide behind a flat end-to-end median.
        # Phases in only one file just diff quietly (instrumentation
        # coverage changes shouldn't block CI).
        old_phases = old_cases[case].get("phases", {})
        new_phases = new_cases[case].get("phases", {})
        for phase in sorted(set(old_phases) & set(new_phases)):
            for field in ("median", "p99"):
                old_p = old_phases[phase].get(field)
                new_p = new_phases[phase].get(field)
                if not isinstance(old_p, (int, float)) or \
                   not isinstance(new_p, (int, float)) or old_p <= 0:
                    continue
                phase_ratio = new_p / old_p
                phase_verdict = \
                    "FAIL" if phase_ratio > args.max_ratio else "ok"
                print(f"{phase_verdict:7} {case} [phase {phase} {field}]: "
                      f"{old_p:.6f}s -> {new_p:.6f}s ({phase_ratio:.2f}x, "
                      f"limit {args.max_ratio:.2f}x)")
                if phase_ratio > args.max_ratio and case not in failures:
                    failures.append(case)

    if failures:
        print(f"\nregression in {len(failures)} case(s): "
              f"{', '.join(failures)}")
        return 1
    print("\nno regressions above the limit")
    return 0


if __name__ == "__main__":
    sys.exit(main())
